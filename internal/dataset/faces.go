package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/img"
)

// FaceConfig controls the synthetic face generator (the FaceScrub
// substitute; see DESIGN.md §2).
type FaceConfig struct {
	// Identities is the number of distinct people (classes).
	Identities int
	// PerIdentity is the number of samples per identity.
	PerIdentity int
	// H, W give the crop geometry (default 24×24 grayscale).
	H, W int
	// Seed fixes the generator.
	Seed int64
}

// DefaultFaces returns the configuration used for the face-recognition
// experiments.
func DefaultFaces(identities, perIdentity int, seed int64) FaceConfig {
	return FaceConfig{Identities: identities, PerIdentity: perIdentity, H: 24, W: 24, Seed: seed}
}

// identity holds the per-person geometry of the parametric face.
type identity struct {
	faceRX, faceRY   float64 // face ellipse radii (fractions of half-size)
	eyeDX, eyeY      float64 // eye horizontal offset and vertical position
	eyeR             float64 // eye radius
	browTilt         float64 // eyebrow slope
	mouthY, mouthW   float64 // mouth position and width
	mouthCurve       float64 // smile curvature (signed)
	noseLen          float64
	skin             float64 // base skin tone
	hairDrop, hairSh float64 // hairline height and darkness
}

// SyntheticFaces generates a deterministic face-like dataset. Each identity
// is a parameter vector of a procedural face (ellipse head with shading,
// eyes, eyebrows, nose, mouth, hairline); samples jitter the geometry and
// illumination and add sensor noise. The rendered faces have enough
// structure that SSIM meaningfully separates good from bad reconstructions,
// which is what Fig 5 / Table IV need.
func SyntheticFaces(cfg FaceConfig) *Dataset {
	if cfg.Identities <= 0 || cfg.PerIdentity <= 0 {
		panic(fmt.Sprintf("dataset: bad face config %+v", cfg))
	}
	if cfg.H == 0 {
		cfg.H = 24
	}
	if cfg.W == 0 {
		cfg.W = 24
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ids := make([]identity, cfg.Identities)
	for i := range ids {
		ids[i] = identity{
			faceRX:     0.62 + rng.Float64()*0.22,
			faceRY:     0.78 + rng.Float64()*0.16,
			eyeDX:      0.26 + rng.Float64()*0.14,
			eyeY:       -0.18 - rng.Float64()*0.14,
			eyeR:       0.06 + rng.Float64()*0.05,
			browTilt:   (rng.Float64() - 0.5) * 0.5,
			mouthY:     0.38 + rng.Float64()*0.16,
			mouthW:     0.24 + rng.Float64()*0.18,
			mouthCurve: (rng.Float64() - 0.35) * 0.5,
			noseLen:    0.18 + rng.Float64()*0.14,
			skin:       150 + rng.Float64()*70,
			hairDrop:   0.55 + rng.Float64()*0.25,
			hairSh:     0.25 + rng.Float64()*0.4,
		}
	}
	d := &Dataset{Name: "synth-faces", Classes: cfg.Identities, C: 1, H: cfg.H, W: cfg.W}
	for id := 0; id < cfg.Identities; id++ {
		for s := 0; s < cfg.PerIdentity; s++ {
			d.Images = append(d.Images, renderFace(ids[id], cfg.H, cfg.W, rng))
			d.Labels = append(d.Labels, id)
		}
	}
	// Interleave identities so Split keeps class balance.
	perm := rng.Perm(d.Len())
	images := make([]*img.Image, d.Len())
	labels := make([]int, d.Len())
	for i, p := range perm {
		images[i] = d.Images[p]
		labels[i] = d.Labels[p]
	}
	d.Images, d.Labels = images, labels
	return d
}

// renderFace rasterizes one jittered sample of an identity.
func renderFace(id identity, h, w int, rng *rand.Rand) *img.Image {
	im := img.New(1, h, w)
	// Per-sample jitter.
	jx := rng.NormFloat64() * 0.03
	jy := rng.NormFloat64() * 0.03
	light := rng.NormFloat64() * 0.25 // illumination gradient strength
	lightDir := rng.Float64()*2 - 1   // left-right direction
	gain := 1 + rng.NormFloat64()*0.08
	noise := 5.0

	halfH := float64(h) / 2
	halfW := float64(w) / 2
	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			// Normalized coords in [-1, 1], jittered.
			x := (float64(px)+0.5)/halfW - 1 + jx
			y := (float64(py)+0.5)/halfH - 1 + jy
			v := 40.0 // background
			// Face ellipse with radial shading.
			fx := x / id.faceRX
			fy := y / id.faceRY
			r2 := fx*fx + fy*fy
			if r2 <= 1 {
				shade := 1 - 0.35*r2
				v = id.skin * shade * gain
				// Illumination gradient.
				v *= 1 + light*lightDir*x
				// Hairline: darken everything above the drop.
				if y < -id.hairDrop {
					v *= id.hairSh
				}
				// Eyes.
				for _, side := range []float64{-1, 1} {
					dx := x - side*id.eyeDX
					dy := y - id.eyeY
					if dx*dx+dy*dy*1.8 < id.eyeR*id.eyeR {
						v = 30
					}
					// Eyebrows: thin dark band above each eye.
					by := id.eyeY - 2.2*id.eyeR - side*id.browTilt*dx
					if math.Abs(y-by) < 0.045 && math.Abs(dx) < id.eyeR*2.2 {
						v *= 0.45
					}
				}
				// Nose: vertical darker ridge.
				if math.Abs(x) < 0.035 && y > id.eyeY && y < id.eyeY+id.noseLen {
					v *= 0.82
				}
				// Mouth: curved dark band.
				my := id.mouthY + id.mouthCurve*(x/id.mouthW)*(x/id.mouthW)
				if math.Abs(y-my) < 0.05 && math.Abs(x) < id.mouthW {
					v = 55
				}
			}
			v += rng.NormFloat64() * noise
			im.Set(clamp255(v), 0, py, px)
		}
	}
	return im
}
