package dataset

import (
	"math"
	"testing"
)

func TestSyntheticCIFARBasics(t *testing.T) {
	d := SyntheticCIFAR(DefaultCIFAR(200, false, 1))
	if d.Len() != 200 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.C != 1 || d.H != 16 || d.W != 16 {
		t.Fatalf("geometry %dx%dx%d", d.C, d.H, d.W)
	}
	counts := make([]int, d.Classes)
	for _, l := range d.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 20 {
			t.Fatalf("class %d has %d samples, want 20", c, n)
		}
	}
	for _, im := range d.Images {
		for _, v := range im.Pix {
			if v < 0 || v > 255 {
				t.Fatalf("pixel %v out of range", v)
			}
		}
	}
}

func TestSyntheticCIFARRGB(t *testing.T) {
	d := SyntheticCIFAR(DefaultCIFAR(50, true, 2))
	if d.C != 3 {
		t.Fatalf("RGB dataset has %d channels", d.C)
	}
	if d.Images[0].NumPix() != 3*16*16 {
		t.Fatalf("NumPix = %d", d.Images[0].NumPix())
	}
}

func TestSyntheticCIFARDeterministic(t *testing.T) {
	a := SyntheticCIFAR(DefaultCIFAR(30, false, 7))
	b := SyntheticCIFAR(DefaultCIFAR(30, false, 7))
	for i := range a.Images {
		for j := range a.Images[i].Pix {
			if a.Images[i].Pix[j] != b.Images[i].Pix[j] {
				t.Fatal("generator not deterministic")
			}
		}
	}
	c := SyntheticCIFAR(DefaultCIFAR(30, false, 8))
	same := true
	for j := range a.Images[0].Pix {
		if a.Images[0].Pix[j] != c.Images[0].Pix[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// The paper's pre-processing depends on a wide per-image std spectrum with
// a mean near 50 (Fig 2b uses bands [30,35], [50,55], [70,75]). Verify the
// generator is calibrated to provide that.
func TestSyntheticCIFARStdSpectrum(t *testing.T) {
	d := SyntheticCIFAR(DefaultCIFAR(1000, false, 3))
	mean := d.StdMean()
	if mean < 40 || mean > 62 {
		t.Fatalf("std mean = %v, want ≈50", mean)
	}
	low := d.IndicesWithStdIn(30, 35)
	mid := d.IndicesWithStdIn(50, 55)
	high := d.IndicesWithStdIn(70, 75)
	if len(low) < 10 || len(mid) < 30 || len(high) < 5 {
		t.Fatalf("std bands too thin: low %d mid %d high %d", len(low), len(mid), len(high))
	}
}

// Images in different std bands must have visibly different pixel-value
// distributions (Fig 2b's observation).
func TestStdBandsHaveDistinctDistributions(t *testing.T) {
	d := SyntheticCIFAR(DefaultCIFAR(1000, false, 4))
	lowIdx := d.IndicesWithStdIn(30, 35)
	highIdx := d.IndicesWithStdIn(70, 75)
	if len(lowIdx) == 0 || len(highIdx) == 0 {
		t.Skip("bands empty at this seed")
	}
	var lowPix, highPix []float64
	for _, i := range lowIdx {
		lowPix = append(lowPix, d.Images[i].Pix...)
	}
	for _, i := range highIdx {
		highPix = append(highPix, d.Images[i].Pix...)
	}
	lowStd := stdOf(lowPix)
	highStd := stdOf(highPix)
	if highStd-lowStd < 15 {
		t.Fatalf("band distributions too similar: low std %v high std %v", lowStd, highStd)
	}
}

func TestSplitPreservesBalanceAndSize(t *testing.T) {
	d := SyntheticCIFAR(DefaultCIFAR(300, false, 5))
	train, test := d.Split(0.2)
	if train.Len()+test.Len() != 300 {
		t.Fatalf("split sizes %d + %d != 300", train.Len(), test.Len())
	}
	if test.Len() < 50 || test.Len() > 70 {
		t.Fatalf("test size %d, want ≈60", test.Len())
	}
	counts := make([]int, d.Classes)
	for _, l := range test.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("class %d missing from test split", c)
		}
	}
}

func TestSplitBadFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SyntheticCIFAR(DefaultCIFAR(10, false, 6)).Split(1.5)
}

func TestTensorsNormalization(t *testing.T) {
	d := SyntheticCIFAR(DefaultCIFAR(20, false, 9))
	x, y := d.Tensors()
	if x.Dim(0) != 20 || x.Dim(1) != 256 {
		t.Fatalf("tensor shape %v", x.Shape())
	}
	if len(y) != 20 {
		t.Fatalf("labels %d", len(y))
	}
	if x.Min() < 0 || x.Max() > 1 {
		t.Fatalf("normalized range [%v, %v]", x.Min(), x.Max())
	}
	if x.At(0, 0) != d.Images[0].Pix[0]/255.0 {
		t.Fatal("normalization mismatch")
	}
}

func TestGrayConversion(t *testing.T) {
	d := SyntheticCIFAR(DefaultCIFAR(10, true, 10))
	g := d.Gray()
	if g.C != 1 {
		t.Fatalf("gray C = %d", g.C)
	}
	if g.Len() != d.Len() {
		t.Fatalf("gray Len = %d", g.Len())
	}
	if g.Labels[3] != d.Labels[3] {
		t.Fatal("labels must carry over")
	}
}

func TestSubset(t *testing.T) {
	d := SyntheticCIFAR(DefaultCIFAR(30, false, 11))
	s := d.Subset([]int{0, 5, 10})
	if s.Len() != 3 {
		t.Fatalf("subset Len = %d", s.Len())
	}
	if s.Images[1] != d.Images[5] {
		t.Fatal("subset must share image pointers")
	}
	if s.Labels[2] != d.Labels[10] {
		t.Fatal("subset labels wrong")
	}
}

func TestSyntheticFacesBasics(t *testing.T) {
	d := SyntheticFaces(DefaultFaces(10, 8, 1))
	if d.Len() != 80 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.C != 1 || d.H != 24 || d.W != 24 {
		t.Fatalf("geometry %dx%dx%d", d.C, d.H, d.W)
	}
	counts := make([]int, 10)
	for _, l := range d.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 8 {
			t.Fatalf("identity %d has %d samples", c, n)
		}
	}
}

func TestSyntheticFacesIdentityConsistency(t *testing.T) {
	d := SyntheticFaces(DefaultFaces(5, 20, 2))
	// Mean within-identity pixel distance should be clearly smaller than
	// between-identity distance: identities must be learnable.
	within, between := 0.0, 0.0
	nw, nb := 0, 0
	for i := 0; i < d.Len(); i++ {
		for j := i + 1; j < d.Len() && j < i+30; j++ {
			dist := 0.0
			for p := range d.Images[i].Pix {
				dd := d.Images[i].Pix[p] - d.Images[j].Pix[p]
				dist += math.Abs(dd)
			}
			dist /= float64(d.Images[i].NumPix())
			if d.Labels[i] == d.Labels[j] {
				within += dist
				nw++
			} else {
				between += dist
				nb++
			}
		}
	}
	within /= float64(nw)
	between /= float64(nb)
	if between < within*1.3 {
		t.Fatalf("identities not separable: within %v between %v", within, between)
	}
}

func TestSyntheticFacesStructure(t *testing.T) {
	d := SyntheticFaces(DefaultFaces(3, 2, 3))
	for _, im := range d.Images {
		if im.Std() < 10 {
			t.Fatalf("face image nearly flat: std %v", im.Std())
		}
		for _, v := range im.Pix {
			if v < 0 || v > 255 {
				t.Fatalf("pixel %v out of range", v)
			}
		}
	}
}

func TestSyntheticFacesDeterministic(t *testing.T) {
	a := SyntheticFaces(DefaultFaces(4, 3, 9))
	b := SyntheticFaces(DefaultFaces(4, 3, 9))
	for i := range a.Images {
		for j := range a.Images[i].Pix {
			if a.Images[i].Pix[j] != b.Images[i].Pix[j] {
				t.Fatal("face generator not deterministic")
			}
		}
	}
}

func TestStdsMatchesImageStd(t *testing.T) {
	d := SyntheticCIFAR(DefaultCIFAR(5, false, 12))
	stds := d.Stds()
	for i, s := range stds {
		if s != d.Images[i].Std() {
			t.Fatalf("Stds[%d] mismatch", i)
		}
	}
}

func stdOf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		m += x
	}
	m /= float64(len(v))
	ss := 0.0
	for _, x := range v {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(v)))
}

// TestSplitDeterministic pins the property the pipeline cache relies on:
// regenerating a dataset from the same seed and splitting it again yields
// bit-identical train/test subsets (same membership, same order, same
// pixels), so a split's cache key can be derived from the source dataset's
// content digest alone.
func TestSplitDeterministic(t *testing.T) {
	mk := func() (*Dataset, *Dataset) {
		return SyntheticCIFAR(DefaultCIFAR(240, false, 9)).Split(0.2)
	}
	tr1, te1 := mk()
	tr2, te2 := mk()
	check := func(a, b *Dataset) {
		t.Helper()
		if a.Len() != b.Len() {
			t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
		}
		if a.ContentDigest() != b.ContentDigest() {
			t.Fatal("same seed produced different split content")
		}
	}
	check(tr1, tr2)
	check(te1, te2)
	if tr1.ContentDigest() == te1.ContentDigest() {
		t.Fatal("train and test digests collide")
	}
	// A different seed must change the digest (sensitivity check).
	tr3, _ := SyntheticCIFAR(DefaultCIFAR(240, false, 10)).Split(0.2)
	if tr3.ContentDigest() == tr1.ContentDigest() {
		t.Fatal("different seeds produced identical digests")
	}
}

func TestContentDigestIgnoresName(t *testing.T) {
	d := SyntheticCIFAR(DefaultCIFAR(40, false, 3))
	want := d.ContentDigest()
	d.Name = "renamed"
	if d.ContentDigest() != want {
		t.Fatal("digest depends on dataset name")
	}
	// But flipping one pixel must change it.
	d.Images[7].Pix[0] += 1
	if d.ContentDigest() == want {
		t.Fatal("digest ignores pixel content")
	}
}
