// Package extract implements the model-extraction attacker of the serving
// threat model: a client that only sees the prediction API. Where the
// attack package hides payloads inside released weights, this package
// steals the function of a deployed model — it spends a bounded query
// budget harvesting input→output pairs from a live dacserve or dacgateway
// endpoint and distills a surrogate network from them, then reports how
// faithfully the surrogate imitates the victim. The serve package's
// per-model policies (rounding, top-1/label-only answers, query budgets)
// are the defenses this attacker measures.
//
// Everything is deterministic under a seeded RNG: the same victim, budget,
// strategy, and seed produce the same surrogate and the same report, which
// is what lets BENCH_extract.json gate defenses in CI.
package extract

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/api"
	"repro/internal/obs"
)

// Victim is the attacker's view of the target: a prediction API and
// nothing else. Predict returns the per-sample predictions and the
// response's policy mode ("" full, "top1", "label").
type Victim interface {
	Predict(inputs [][]float64) ([]api.Prediction, string, error)
}

// Client is the HTTP Victim: it speaks the /v1 predict surface of dacserve
// and dacgateway (the bodies are identical by design) under a stable
// client identity, so the defender's per-client accounting, budgets, and
// extraction detector all see the attacker coming.
type Client struct {
	// BaseURL is the endpoint root (no trailing slash), Model the registry
	// name under attack.
	BaseURL string
	// Model names the victim model.
	Model string
	// ClientID is sent as X-Dac-Client on every request. Empty means the
	// server falls back to the remote address.
	ClientID string
	// HTTP is the transport; nil selects http.DefaultClient.
	HTTP *http.Client

	// Requests and Queries count what the client has spent: HTTP calls
	// made and samples submitted (including ones the server denied).
	Requests int
	Queries  int
}

// NewClient builds a client against baseURL for model, identifying as
// clientID.
func NewClient(baseURL, model, clientID string) *Client {
	return &Client{BaseURL: baseURL, Model: model, ClientID: clientID}
}

// Predict submits one batch to the victim. A non-200 answer decodes the
// unified error envelope and returns it as the error, so callers can
// branch on api.Error codes (budget_exhausted in particular).
func (c *Client) Predict(inputs [][]float64) ([]api.Prediction, string, error) {
	body, err := json.Marshal(api.PredictRequest{API: api.Version, Model: c.Model, Inputs: inputs})
	if err != nil {
		return nil, "", err
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.ClientID != "" {
		req.Header.Set(obs.HeaderClient, c.ClientID)
	}
	c.Requests++
	c.Queries += len(inputs)
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, "", fmt.Errorf("extract: predict: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, "", fmt.Errorf("extract: predict: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		if e, perr := api.ParseError(raw); perr == nil {
			return nil, "", e
		}
		return nil, "", fmt.Errorf("extract: predict answered %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var pr api.PredictResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		return nil, "", fmt.Errorf("extract: bad predict response: %w", err)
	}
	if len(pr.Predictions) != len(inputs) {
		return nil, "", fmt.Errorf("extract: %d predictions for %d inputs", len(pr.Predictions), len(inputs))
	}
	return pr.Predictions, pr.Mode, nil
}

// ModelShape is the victim metadata the attacker reads off GET /v1/models
// before the first query: enough to size the surrogate.
type ModelShape struct {
	Name       string `json:"name"`
	Digest     string `json:"digest"`
	InputShape []int  `json:"input_shape"`
	Classes    int    `json:"classes"`
}

// Shape fetches the victim's input shape and class count from the public
// model list — reconnaissance the API hands out for free.
func (c *Client) Shape() (ModelShape, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Get(c.BaseURL + "/v1/models")
	if err != nil {
		return ModelShape{}, fmt.Errorf("extract: models: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ModelShape{}, fmt.Errorf("extract: models answered %d", resp.StatusCode)
	}
	var wrapper struct {
		Models []ModelShape `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wrapper); err != nil {
		return ModelShape{}, fmt.Errorf("extract: bad models response: %w", err)
	}
	for _, m := range wrapper.Models {
		if m.Name == c.Model {
			return m, nil
		}
	}
	return ModelShape{}, fmt.Errorf("extract: model %q not in the server's list", c.Model)
}
