package extract

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/api"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

// Config controls one extraction run: how many victim samples the attacker
// may spend, how queries are synthesized, and how the surrogate is
// distilled from the harvest.
type Config struct {
	// Budget is the total victim samples the attacker allows itself.
	Budget int
	// BatchSize is the samples per predict request. <= 0 selects 64.
	BatchSize int
	// Strategy synthesizes query inputs; required.
	Strategy Strategy
	// Seed drives query synthesis and distillation shuffling — the whole
	// attack is deterministic in it.
	Seed int64
	// Surrogate is the architecture the stolen function is distilled into
	// (the attacker's guess; it need not match the victim's).
	Surrogate nn.ResNetConfig
	// Epochs are the distillation passes over the harvest. <= 0 selects 30.
	Epochs int
	// LR is the Adam learning rate. <= 0 selects 0.003.
	LR float64
	// TrainBatch is the distillation minibatch size. <= 0 selects 32.
	TrainBatch int
	// Threads sets the surrogate's compute workers (0 = GOMAXPROCS).
	// Results are bit-identical for every value (the train contract).
	Threads int
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.LR <= 0 {
		c.LR = 0.003
	}
	if c.TrainBatch <= 0 {
		c.TrainBatch = 32
	}
	return c
}

// Harvest is the attacker's haul: every queried input paired with the
// target distribution the victim's answer yields. Full and rounded
// responses give soft targets (the victim's probs); top-1 and label-only
// responses degrade to one-hot targets — that information loss is exactly
// what those defenses are for.
type Harvest struct {
	Inputs  [][]float64
	Targets [][]float64
	// Soft reports whether targets carry the victim's probability mass
	// (false once a policy strips scores).
	Soft bool
	// Mode is the last response mode the victim answered with.
	Mode string
	// Queries and Requests are the spend; Denied counts requests the
	// victim refused with budget_exhausted (the harvest then stops early).
	Queries, Requests, Denied int
}

// HarvestQueries spends the budget against the victim: synthesize a batch,
// query, pair inputs with targets, repeat. A budget_exhausted answer ends
// the harvest early with whatever was gathered — the defense working as
// intended, not an attack failure.
func HarvestQueries(v Victim, cfg Config) (*Harvest, error) {
	cfg = cfg.withDefaults()
	if cfg.Strategy == nil {
		return nil, fmt.Errorf("extract: Config.Strategy is required")
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("extract: Config.Budget must be positive")
	}
	classes := cfg.Surrogate.Classes
	if classes <= 0 {
		return nil, fmt.Errorf("extract: Config.Surrogate.Classes must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := &Harvest{Soft: true}
	for h.Queries < cfg.Budget {
		n := cfg.BatchSize
		if rem := cfg.Budget - h.Queries; n > rem {
			n = rem
		}
		inputs := cfg.Strategy.Next(rng, n)
		h.Requests++
		h.Queries += n
		preds, mode, err := v.Predict(inputs)
		if err != nil {
			var apiErr api.Error
			if errors.As(err, &apiErr) && apiErr.Code == api.CodeBudgetExhausted {
				h.Denied++
				break
			}
			return nil, err
		}
		h.Mode = mode
		for i, p := range preds {
			target := make([]float64, classes)
			if len(p.Probs) == classes {
				copy(target, p.Probs)
			} else {
				// Defended answer: all the attacker learns is the argmax.
				h.Soft = false
				if p.Class < 0 || p.Class >= classes {
					return nil, fmt.Errorf("extract: victim class %d outside %d classes", p.Class, classes)
				}
				target[p.Class] = 1
			}
			h.Inputs = append(h.Inputs, inputs[i])
			h.Targets = append(h.Targets, target)
		}
	}
	if len(h.Inputs) == 0 {
		return nil, fmt.Errorf("extract: harvest is empty (budget denied before any answer)")
	}
	return h, nil
}

// Distill trains a fresh surrogate on the harvest by soft-label
// distillation: the loss is cross-entropy against the victim's
// distribution (which degrades gracefully to hard-label training when the
// targets are one-hot). Reuses the train package's Adam optimizer; the
// loop mirrors train.Run but takes distribution targets instead of integer
// labels.
func Distill(h *Harvest, cfg Config) *nn.Model {
	cfg = cfg.withDefaults()
	m := nn.NewResNet(cfg.Surrogate)
	m.SetThreads(cfg.Threads)
	n := len(h.Inputs)
	sample := len(h.Inputs[0])
	classes := cfg.Surrogate.Classes
	x := tensor.New(n, sample)
	xd := x.Data()
	for i, in := range h.Inputs {
		copy(xd[i*sample:(i+1)*sample], in)
	}
	bs := cfg.TrainBatch
	if bs > n {
		bs = n
	}
	opt := train.NewAdam(cfg.LR)
	// Distillation shuffling gets its own stream (Seed+1) so it never
	// aliases the query-synthesis stream.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	bx := tensor.New(bs, sample)
	bt := make([][]float64, bs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for lo := 0; lo+bs <= n; lo += bs {
			bd := bx.Data()
			for i, src := range perm[lo : lo+bs] {
				copy(bd[i*sample:(i+1)*sample], xd[src*sample:(src+1)*sample])
				bt[i] = h.Targets[src]
			}
			batch := bx.Reshape(append([]int{bs}, m.InputShape...)...)
			m.ZeroGrad()
			logits := m.ForwardTrain(batch)
			_, grad := distillLoss(logits, bt, classes)
			m.Backward(grad)
			opt.Step(m.Params())
		}
	}
	return m
}

// distillLoss is cross-entropy against distribution targets: loss =
// -Σ t·log softmax(z) averaged over the batch, grad = (softmax(z) − t)/N.
// With one-hot targets this is exactly nn.SoftmaxCrossEntropy.
func distillLoss(logits *tensor.Tensor, targets [][]float64, k int) (float64, *tensor.Tensor) {
	n := logits.Dim(0)
	grad := tensor.New(n, k)
	ld, gd := logits.Data(), grad.Data()
	invN := 1.0 / float64(n)
	loss := 0.0
	for i := 0; i < n; i++ {
		row := ld[i*k : (i+1)*k]
		grow := gd[i*k : (i+1)*k]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxV)
			grow[j] = e
			sum += e
		}
		logSum := math.Log(sum)
		t := targets[i]
		for j := range grow {
			p := grow[j] / sum
			if t[j] > 0 {
				loss -= t[j] * (row[j] - maxV - logSum) * invN
			}
			grow[j] = (p - t[j]) * invN
		}
	}
	return loss, grad
}

// Report quantifies one extraction run — the numbers BENCH_extract.json
// and dacsteal emit.
type Report struct {
	Strategy string `json:"strategy"`
	Budget   int    `json:"budget"`
	// Queries is the spend (samples submitted, answered or not); Harvested
	// is the input→target pairs actually gathered.
	Queries   int `json:"queries"`
	Requests  int `json:"requests"`
	Harvested int `json:"harvested"`
	// Denied counts requests the victim's query budget refused.
	Denied int `json:"denied_requests,omitempty"`
	// SoftLabels reports whether the victim leaked probability mass; Mode
	// echoes the response mode the defense imposed.
	SoftLabels bool   `json:"soft_labels"`
	Mode       string `json:"response_mode,omitempty"`
	// Agreement is the top-1 agreement between surrogate and victim on the
	// held-out evaluation set — the paper-standard fidelity metric.
	Agreement float64 `json:"top1_agreement"`
	// VictimAcc and SurrogateAcc are test-set accuracies; their gap is
	// what the attacker failed to steal.
	VictimAcc    float64 `json:"victim_test_acc"`
	SurrogateAcc float64 `json:"surrogate_test_acc"`
	// QueriesPerPoint is queries spent per agreement point — the attack's
	// price sheet.
	QueriesPerPoint float64 `json:"queries_per_agreement_point"`
}

// Evaluate computes fidelity offline: top-1 agreement between surrogate
// and victim over testX, plus both models' accuracies against testY. The
// victim model here is the defender's own copy — evaluation spends no
// queries.
func Evaluate(surrogate, victim *nn.Model, testX *tensor.Tensor, testY []int) (agreement, victimAcc, surrogateAcc float64) {
	const evalBatch = 64
	vp := victim.Predict(testX, evalBatch)
	sp := surrogate.Predict(testX, evalBatch)
	agree, vOK, sOK := 0, 0, 0
	for i := range vp {
		if vp[i] == sp[i] {
			agree++
		}
		if vp[i] == testY[i] {
			vOK++
		}
		if sp[i] == testY[i] {
			sOK++
		}
	}
	n := float64(len(vp))
	return float64(agree) / n, float64(vOK) / n, float64(sOK) / n
}

// Run is the whole attack: harvest under the budget, distill the
// surrogate, evaluate fidelity against the defender's reference copy of
// the victim. It returns the report and the surrogate.
func Run(v Victim, victimModel *nn.Model, testX *tensor.Tensor, testY []int, cfg Config) (*Report, *nn.Model, error) {
	cfg = cfg.withDefaults()
	h, err := HarvestQueries(v, cfg)
	if err != nil {
		return nil, nil, err
	}
	surrogate := Distill(h, cfg)
	agreement, vAcc, sAcc := Evaluate(surrogate, victimModel, testX, testY)
	rep := &Report{
		Strategy:   cfg.Strategy.Name(),
		Budget:     cfg.Budget,
		Queries:    h.Queries,
		Requests:   h.Requests,
		Harvested:  len(h.Inputs),
		Denied:     h.Denied,
		SoftLabels: h.Soft,
		Mode:       h.Mode,
		Agreement:  agreement, VictimAcc: vAcc, SurrogateAcc: sAcc,
	}
	if agreement > 0 {
		rep.QueriesPerPoint = float64(h.Queries) / (agreement * 100)
	}
	return rep, surrogate, nil
}
