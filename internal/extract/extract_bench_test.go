package extract

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/modelio"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/train"
)

// emitBench, when set to a path, makes TestEmitExtractBench run the
// extraction attack against a live defended server and write the
// per-defense fidelity numbers there as JSON. Wired to `make
// extract-bench`.
var emitBench = flag.String("emit-bench", "", "write extraction-vs-defense report (BENCH_extract.json) to this path")

// extractBenchReport is the BENCH_extract.json schema: one attack run per
// serving defense, at the same query budget.
type extractBenchReport struct {
	// Preset documents the victim: the shared CIFAR release preset.
	Preset string `json:"preset"`
	// VictimAcc is the victim's own test accuracy (the ceiling being
	// stolen).
	VictimAcc float64 `json:"victim_test_acc"`
	Budget    int     `json:"budget"`
	Strategy  string  `json:"strategy"`
	// Rows is one attack run per defense; the first row is undefended.
	Rows []extractBenchRow `json:"rows"`
	// MaxDropPoints is the largest top-1 agreement drop (in points, 0-100)
	// any single defense bought relative to the undefended row.
	MaxDropPoints float64 `json:"max_drop_points"`
	// BestDefense names the row that bought MaxDropPoints.
	BestDefense string `json:"best_defense"`
}

type extractBenchRow struct {
	// Defense names the row; Policy is the serving policy JSON applied.
	Defense string        `json:"defense"`
	Policy  serve.Policy  `json:"policy"`
	Report  Report        `json:"report"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// DropPoints is the agreement lost versus the undefended row, in
	// points.
	DropPoints float64 `json:"drop_points"`
}

// TestEmitExtractBench runs the full attack-vs-defense matrix on the CIFAR
// release preset: train a victim, serve it, extract a surrogate undefended
// and under each serving defense at the same query budget. Guards pin the
// headline claims: the undefended attack reaches >= 80% top-1 agreement,
// and at least one defense cuts agreement by >= 10 points.
func TestEmitExtractBench(t *testing.T) {
	if *emitBench == "" {
		t.Skip("run via make extract-bench (needs -emit-bench=<path>)")
	}
	preset := core.CIFARRelease()
	threads := runtime.GOMAXPROCS(0)

	// One synthetic distribution (the class templates are drawn from the
	// dataset seed), partitioned into disjoint victim-training, attacker
	// pool, and held-out evaluation slices. The attacker knowing the
	// in-distribution pool — but not the victim's samples or labels — is
	// exactly the paper-era extraction threat model.
	const victimN, poolN, evalN = 2000, 2000, 600
	full := dataset.SyntheticCIFAR(preset.DataConfig(victimN+poolN+evalN, 123))
	fx, fy := full.Tensors()
	vx, vy := sliceRows(fx, fy, 0, victimN)
	px, _ := sliceRows(fx, fy, victimN, victimN+poolN)
	testX, testY := sliceRows(fx, fy, victimN+poolN, victimN+poolN+evalN)

	// The victim: trained on its private slice with the experiments'
	// recipe, exported and served like a production release.
	victim := nn.NewResNet(preset.ArchConfig(31))
	train.Run(victim, vx, vy, train.Config{
		Epochs: 25, BatchSize: 32, Optimizer: train.NewSGD(0.05, 0.9, 0),
		Schedule: train.StepDecay(0.05, 8, 0.3),
		ClipNorm: 5, Seed: 32, Threads: threads,
	})
	rm, err := modelio.Export(victim, preset.ArchConfig(31), nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "victim.bin")
	if err := modelio.Save(path, rm); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.Options{
		MaxBatch: 16, QueueDepth: 256, FlushEvery: 200 * time.Microsecond,
		Threads: threads, Obs: obs.NewRegistry(),
	})
	defer reg.Close()
	if _, err := reg.LoadFile("prod", path); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(reg, nil)
	srv.SetReady()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The attacker's pool as prior-strategy rows.
	pool := rowsOf(px)

	const budget = 2000
	baseCfg := Config{
		Budget: budget, BatchSize: 64, Strategy: NewPrior(pool), Seed: 7,
		Surrogate: preset.ArchConfig(99), Epochs: 20, LR: 0.003,
		TrainBatch: 32, Threads: threads,
	}

	rep := extractBenchReport{
		Preset: "cifar-release", Budget: budget, Strategy: "prior",
	}
	defenses := []struct {
		name   string
		policy serve.Policy
	}{
		{"none", serve.Policy{}},
		{"round1", serve.Policy{Round: 1}},
		{"top1", serve.Policy{Mode: serve.PolicyTop1}},
		{"label", serve.Policy{Mode: serve.PolicyLabel}},
		{"budget250", serve.Policy{QueryBudget: 250}},
	}
	for _, d := range defenses {
		if err := reg.SetPolicy("prod", d.policy); err != nil {
			t.Fatal(err)
		}
		// A fresh client identity per row: each attack faces a fresh
		// per-client budget ledger, like distinct real attackers would.
		client := NewClient(ts.URL, "prod", "bench-"+d.name)
		start := time.Now()
		r, _, err := Run(client, victim, testX, testY, baseCfg)
		if err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		row := extractBenchRow{Defense: d.name, Policy: d.policy, Report: *r, Elapsed: time.Since(start)}
		rep.Rows = append(rep.Rows, row)
		rep.VictimAcc = r.VictimAcc
		t.Logf("%-10s agreement=%.3f surrogate_acc=%.3f harvested=%d soft=%v mode=%q (%.1fs)",
			d.name, r.Agreement, r.SurrogateAcc, r.Harvested, r.SoftLabels, r.Mode, time.Since(start).Seconds())
	}
	undefended := rep.Rows[0].Report.Agreement
	for i := range rep.Rows {
		drop := (undefended - rep.Rows[i].Report.Agreement) * 100
		rep.Rows[i].DropPoints = drop
		if i > 0 && drop > rep.MaxDropPoints {
			rep.MaxDropPoints = drop
			rep.BestDefense = rep.Rows[i].Defense
		}
	}

	// The headline guards: extraction works undefended, and at least one
	// defense blunts it by >= 10 agreement points at the same budget.
	if undefended < 0.80 {
		t.Errorf("undefended agreement %.3f < 0.80: the attack itself regressed", undefended)
	}
	if rep.MaxDropPoints < 10 {
		t.Errorf("best defense (%s) cut agreement by only %.1f points, want >= 10",
			rep.BestDefense, rep.MaxDropPoints)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*emitBench, append(enc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("extract bench written to %s (undefended %.3f, best defense %s: -%.1f points)\n",
		*emitBench, undefended, rep.BestDefense, rep.MaxDropPoints)
}

// sliceRows copies rows [lo, hi) of x and the matching labels into a fresh
// tensor, partitioning one dataset into disjoint same-distribution slices.
func sliceRows(x *tensor.Tensor, y []int, lo, hi int) (*tensor.Tensor, []int) {
	sample := len(x.Data()) / x.Dim(0)
	out := tensor.New(hi-lo, sample)
	copy(out.Data(), x.Data()[lo*sample:hi*sample])
	labels := make([]int, hi-lo)
	copy(labels, y[lo:hi])
	return out, labels
}

// rowsOf flattens a pixel tensor into per-sample rows.
func rowsOf(x *tensor.Tensor) [][]float64 {
	n := x.Dim(0)
	d := x.Data()
	sample := len(d) / n
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = d[i*sample : (i+1)*sample]
	}
	return rows
}
