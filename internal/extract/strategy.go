package extract

import (
	"fmt"
	"math/rand"
)

// Strategy synthesizes the attacker's query inputs. Next draws n flattened
// samples from the strategy's distribution using rng — all randomness
// flows through that one RNG, so a harvest is reproducible from its seed.
type Strategy interface {
	Name() string
	Next(rng *rand.Rand, n int) [][]float64
}

// randomStrategy draws i.i.d. uniform pixels in [0, 1) — the zero-knowledge
// attacker. Cheap and unblockable, but far off the data manifold: batch
// norm statistics answer garbage for it, so its surrogates trail the
// informed strategies (the classic Tramèr-style baseline).
type randomStrategy struct{ sampleLen int }

// NewRandom builds the uniform-random strategy for flattened samples of
// sampleLen values.
func NewRandom(sampleLen int) Strategy { return randomStrategy{sampleLen} }

func (s randomStrategy) Name() string { return "random" }

func (s randomStrategy) Next(rng *rand.Rand, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		in := make([]float64, s.sampleLen)
		for j := range in {
			in[j] = rng.Float64()
		}
		out[i] = in
	}
	return out
}

// jitterStrategy perturbs seed samples with Gaussian pixel noise: the
// attacker holds a handful of in-domain images and multiplies them into
// unlimited near-manifold queries. Every jittered sample is bit-distinct,
// which is exactly what the serve detector's novelty heuristic keys on.
type jitterStrategy struct {
	seeds [][]float64
	sigma float64
}

// NewJitter builds the seed-jitter strategy. sigma is the per-pixel noise
// std in [0,1] pixel units; <= 0 selects 0.05.
func NewJitter(seeds [][]float64, sigma float64) Strategy {
	if sigma <= 0 {
		sigma = 0.05
	}
	return jitterStrategy{seeds: seeds, sigma: sigma}
}

func (s jitterStrategy) Name() string { return "jitter" }

func (s jitterStrategy) Next(rng *rand.Rand, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		seed := s.seeds[rng.Intn(len(s.seeds))]
		in := make([]float64, len(seed))
		for j, v := range seed {
			in[j] = v + rng.NormFloat64()*s.sigma
		}
		out[i] = in
	}
	return out
}

// priorStrategy draws (with replacement) from a pool of in-distribution
// samples the attacker owns — the dataset-prior attacker, strongest per
// query because every probe sits on the victim's data manifold.
type priorStrategy struct{ pool [][]float64 }

// NewPrior builds the dataset-prior strategy over pool.
func NewPrior(pool [][]float64) Strategy { return priorStrategy{pool} }

func (s priorStrategy) Name() string { return "prior" }

func (s priorStrategy) Next(rng *rand.Rand, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		src := s.pool[rng.Intn(len(s.pool))]
		out[i] = append([]float64(nil), src...)
	}
	return out
}

// ByName resolves a strategy from its CLI name. sampleLen sizes random
// queries; pool feeds jitter (as seeds) and prior (as the draw pool).
func ByName(name string, sampleLen int, pool [][]float64, jitterSigma float64) (Strategy, error) {
	switch name {
	case "random":
		return NewRandom(sampleLen), nil
	case "jitter":
		if len(pool) == 0 {
			return nil, fmt.Errorf("extract: jitter strategy needs seed samples")
		}
		return NewJitter(pool, jitterSigma), nil
	case "prior":
		if len(pool) == 0 {
			return nil, fmt.Errorf("extract: prior strategy needs a sample pool")
		}
		return NewPrior(pool), nil
	default:
		return nil, fmt.Errorf("extract: unknown strategy %q (want random, jitter, or prior)", name)
	}
}
