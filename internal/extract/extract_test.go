package extract

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/api"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func testArch() nn.ResNetConfig {
	return nn.ResNetConfig{
		InC: 1, InH: 8, InW: 8, Classes: 4,
		Widths: []int{4, 8}, Blocks: []int{1, 1}, Seed: 77,
	}
}

// fakeVictim answers predictions from a fixed deterministic rule: the
// class is the argmax of per-class sums over input quarters, probs are a
// softmax over those sums. soft=false strips probs (a defended victim);
// denyAfter > 0 refuses with budget_exhausted once that many samples have
// been answered.
type fakeVictim struct {
	classes   int
	soft      bool
	mode      string
	denyAfter int
	answered  int
}

func (f *fakeVictim) Predict(inputs [][]float64) ([]api.Prediction, string, error) {
	if f.denyAfter > 0 && f.answered >= f.denyAfter {
		return nil, "", api.Error{Message: "budget", Code: api.CodeBudgetExhausted}
	}
	preds := make([]api.Prediction, len(inputs))
	for i, in := range inputs {
		scores := make([]float64, f.classes)
		for j, v := range in {
			scores[j%f.classes] += v
		}
		best, sum := 0, 0.0
		for c, s := range scores {
			if s > scores[best] {
				best = c
			}
			scores[c] = math.Exp(s / float64(len(in)))
			sum += scores[c]
		}
		for c := range scores {
			scores[c] /= sum
		}
		preds[i] = api.Prediction{Class: best}
		if f.soft {
			preds[i].Probs = scores
		}
	}
	f.answered += len(inputs)
	return preds, f.mode, nil
}

func TestStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	random := NewRandom(16)
	out := random.Next(rng, 5)
	if len(out) != 5 || len(out[0]) != 16 {
		t.Fatalf("random: got %d samples of %d", len(out), len(out[0]))
	}
	for _, in := range out {
		for _, v := range in {
			if v < 0 || v >= 1 {
				t.Fatalf("random pixel %v outside [0,1)", v)
			}
		}
	}

	pool := [][]float64{{1, 2, 3}, {4, 5, 6}}
	prior := NewPrior(pool)
	for _, in := range prior.Next(rng, 8) {
		if !reflect.DeepEqual(in, pool[0]) && !reflect.DeepEqual(in, pool[1]) {
			t.Fatalf("prior draw %v not from the pool", in)
		}
	}
	// Prior returns copies, never aliases into the pool.
	draw := prior.Next(rng, 1)[0]
	draw[0] = -99
	if pool[0][0] == -99 || pool[1][0] == -99 {
		t.Fatal("prior draw aliases the pool")
	}

	jitter := NewJitter(pool, 0.01)
	a := jitter.Next(rand.New(rand.NewSource(7)), 4)
	b := jitter.Next(rand.New(rand.NewSource(7)), 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("jitter is not deterministic in the rng")
	}
	if reflect.DeepEqual(a[0], a[1]) && reflect.DeepEqual(a[1], a[2]) {
		t.Fatal("jitter produced identical samples")
	}
}

func TestByName(t *testing.T) {
	pool := [][]float64{{1}}
	for _, tc := range []struct {
		name string
		pool [][]float64
		ok   bool
	}{
		{"random", nil, true},
		{"jitter", pool, true},
		{"jitter", nil, false},
		{"prior", pool, true},
		{"prior", nil, false},
		{"bogus", pool, false},
	} {
		s, err := ByName(tc.name, 4, tc.pool, 0)
		if tc.ok && (err != nil || s.Name() != tc.name) {
			t.Errorf("ByName(%q): got %v, %v", tc.name, s, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("ByName(%q) with %d pool: want error", tc.name, len(tc.pool))
		}
	}
}

func TestHarvestDeterministic(t *testing.T) {
	cfg := Config{
		Budget: 100, BatchSize: 32, Strategy: NewRandom(64),
		Seed: 5, Surrogate: testArch(),
	}
	h1, err := HarvestQueries(&fakeVictim{classes: 4, soft: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HarvestQueries(&fakeVictim{classes: 4, soft: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Fatal("same seed produced different harvests")
	}
	if h1.Queries != 100 || h1.Requests != 4 || len(h1.Inputs) != 100 {
		t.Fatalf("spend: queries=%d requests=%d harvested=%d", h1.Queries, h1.Requests, len(h1.Inputs))
	}
	if !h1.Soft {
		t.Fatal("soft victim yielded hard targets")
	}
	for _, target := range h1.Targets {
		sum := 0.0
		for _, v := range target {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("soft target mass %v != 1", sum)
		}
	}
}

func TestHarvestHardTargets(t *testing.T) {
	cfg := Config{
		Budget: 10, BatchSize: 10, Strategy: NewRandom(64),
		Seed: 5, Surrogate: testArch(),
	}
	h, err := HarvestQueries(&fakeVictim{classes: 4, mode: "label"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Soft {
		t.Fatal("defended victim yielded soft targets")
	}
	if h.Mode != "label" {
		t.Fatalf("mode = %q, want label", h.Mode)
	}
	for _, target := range h.Targets {
		ones, sum := 0, 0.0
		for _, v := range target {
			sum += v
			if v == 1 {
				ones++
			}
		}
		if ones != 1 || sum != 1 {
			t.Fatalf("target %v is not one-hot", target)
		}
	}
}

func TestHarvestStopsOnBudgetExhausted(t *testing.T) {
	cfg := Config{
		Budget: 200, BatchSize: 25, Strategy: NewRandom(64),
		Seed: 5, Surrogate: testArch(),
	}
	h, err := HarvestQueries(&fakeVictim{classes: 4, soft: true, denyAfter: 50}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Inputs) != 50 {
		t.Fatalf("harvested %d, want the 50 answered before denial", len(h.Inputs))
	}
	if h.Denied != 1 {
		t.Fatalf("denied = %d, want 1", h.Denied)
	}
	// The denied request still counts as spend — the attacker sent it.
	if h.Queries != 75 {
		t.Fatalf("queries = %d, want 75", h.Queries)
	}

	// Denied before anything was gathered: the harvest is an error.
	drained := &fakeVictim{classes: 4, denyAfter: 1, answered: 1}
	if _, err := HarvestQueries(drained, Config{
		Budget: 10, BatchSize: 10, Strategy: NewRandom(64), Seed: 5,
		Surrogate: testArch(),
	}); err == nil {
		t.Fatal("empty harvest should be an error")
	}
}

// TestDistillLossMatchesHardLabelLoss pins the distillation loss to the
// training stack's own cross-entropy: with one-hot targets the two must
// agree bit-for-bit in both loss and gradient.
func TestDistillLossMatchesHardLabelLoss(t *testing.T) {
	const n, k = 6, 4
	rng := rand.New(rand.NewSource(3))
	logits := tensor.New(n, k).RandN(rng, 0, 2)
	labels := make([]int, n)
	targets := make([][]float64, n)
	for i := range labels {
		labels[i] = rng.Intn(k)
		targets[i] = make([]float64, k)
		targets[i][labels[i]] = 1
	}
	wantLoss, wantGrad := nn.SoftmaxCrossEntropy(logits, labels)
	gotLoss, gotGrad := distillLoss(logits, targets, k)
	if math.Abs(gotLoss-wantLoss) > 1e-12 {
		t.Fatalf("loss %v != %v", gotLoss, wantLoss)
	}
	wd, gd := wantGrad.Data(), gotGrad.Data()
	for i := range wd {
		if math.Abs(wd[i]-gd[i]) > 1e-12 {
			t.Fatalf("grad[%d] %v != %v", i, gd[i], wd[i])
		}
	}
}

// TestDistillDeterministic pins the attack's reproducibility contract:
// same harvest, same seed, same thread count or not — same surrogate.
func TestDistillDeterministic(t *testing.T) {
	cfg := Config{
		Budget: 64, BatchSize: 32, Strategy: NewRandom(64),
		Seed: 11, Surrogate: testArch(), Epochs: 2, TrainBatch: 16,
	}
	h, err := HarvestQueries(&fakeVictim{classes: 4, soft: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgA, cfgB := cfg, cfg
	cfgA.Threads = 1
	cfgB.Threads = 3
	a := Distill(h, cfgA)
	b := Distill(h, cfgB)
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		av, bv := pa[i].Value.Data(), pb[i].Value.Data()
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("param %d[%d]: %v != %v across thread counts", i, j, av[j], bv[j])
			}
		}
	}
}
