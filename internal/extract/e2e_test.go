package extract

import (
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/modelio"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// startVictim spins up a real serve server over one released test model
// and returns the registry (for policy toggles) and an attack client.
func startVictim(t *testing.T) (*serve.Registry, *Client) {
	t.Helper()
	m := nn.NewResNet(testArch())
	rng := rand.New(rand.NewSource(42))
	for _, p := range m.Params() {
		p.Value.RandN(rng, 0, 0.1)
	}
	m.ForwardTrain(tensor.New(8, 1, 8, 8).RandN(rng, 0, 1))
	rm, err := modelio.Export(m, testArch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "victim.bin")
	if err := modelio.Save(path, rm); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.Options{
		MaxBatch: 4, QueueDepth: 64, FlushEvery: 200 * time.Microsecond,
		Threads: 1, Obs: obs.NewRegistry(),
	})
	if _, err := reg.LoadFile("victim", path); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(reg, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	srv.SetReady()
	return reg, NewClient(ts.URL, "victim", "attacker-e2e")
}

// TestClientAgainstLiveServer drives the HTTP client end to end: shape
// reconnaissance, an undefended harvest (soft labels), then hot-swapped
// policies degrading the same attack to hard labels and finally refusing
// it outright.
func TestClientAgainstLiveServer(t *testing.T) {
	reg, client := startVictim(t)
	shape, err := client.Shape()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shape.InputShape, []int{1, 8, 8}) || shape.Classes != 4 {
		t.Fatalf("recon: shape=%v classes=%d", shape.InputShape, shape.Classes)
	}

	cfg := Config{
		Budget: 24, BatchSize: 8, Strategy: NewRandom(64),
		Seed: 9, Surrogate: testArch(),
	}
	h, err := HarvestQueries(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Soft || h.Mode != "" {
		t.Fatalf("undefended harvest: soft=%v mode=%q", h.Soft, h.Mode)
	}
	if client.Queries != 24 || client.Requests != 3 {
		t.Fatalf("client spend: queries=%d requests=%d", client.Queries, client.Requests)
	}

	// Top-1-only policy, no restart: the same attack now only learns
	// argmaxes.
	if err := reg.SetPolicy("victim", serve.Policy{Mode: serve.PolicyTop1}); err != nil {
		t.Fatal(err)
	}
	h, err = HarvestQueries(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Soft || h.Mode != "top1" {
		t.Fatalf("top1 harvest: soft=%v mode=%q", h.Soft, h.Mode)
	}

	// Query budget below the attacker's: the harvest stops at the denial
	// with only the answered prefix. A fresh client identity gets a fresh
	// ledger entry.
	if err := reg.SetPolicy("victim", serve.Policy{QueryBudget: 10}); err != nil {
		t.Fatal(err)
	}
	budgeted := NewClient(client.BaseURL, client.Model, "attacker-budgeted")
	h, err = HarvestQueries(budgeted, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Denied != 1 {
		t.Fatalf("denied = %d, want 1", h.Denied)
	}
	if len(h.Inputs) != 8 {
		t.Fatalf("harvested %d, want the 8 answered before the budget tripped", len(h.Inputs))
	}
}

// TestHarvestDeterministicOverHTTP pins that the full HTTP round trip
// preserves the determinism contract: two identically-seeded harvests
// against the same live victim are byte-equal.
func TestHarvestDeterministicOverHTTP(t *testing.T) {
	_, client := startVictim(t)
	cfg := Config{
		Budget: 16, BatchSize: 8, Strategy: NewRandom(64),
		Seed: 21, Surrogate: testArch(),
	}
	h1, err := HarvestQueries(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HarvestQueries(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Fatal("same seed produced different harvests over HTTP")
	}
}
