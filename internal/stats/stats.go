// Package stats provides the histogram and distribution-distance utilities
// used to compare weight and pixel distributions (the paper's Figs 2 and 3).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a normalized frequency histogram over an explicit range.
type Histogram struct {
	// Lo, Hi bound the value range; values outside are clamped into the
	// end buckets.
	Lo, Hi float64
	// Freq holds normalized bucket frequencies summing to 1 (for
	// non-empty input).
	Freq []float64
	// N is the number of samples counted.
	N int
}

// NewHistogram counts values into `bins` equal-width buckets over [lo, hi].
func NewHistogram(values []float64, bins int, lo, hi float64) Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram range [%v, %v]", lo, hi))
	}
	h := Histogram{Lo: lo, Hi: hi, Freq: make([]float64, bins), N: len(values)}
	if len(values) == 0 {
		return h
	}
	scale := float64(bins) / (hi - lo)
	for _, v := range values {
		b := int((v - lo) * scale)
		if b < 0 {
			b = 0
		} else if b >= bins {
			b = bins - 1
		}
		h.Freq[b]++
	}
	inv := 1.0 / float64(len(values))
	for i := range h.Freq {
		h.Freq[i] *= inv
	}
	return h
}

// AutoHistogram builds a histogram spanning the data's own min/max (with a
// tiny margin so the max lands inside the last bucket).
func AutoHistogram(values []float64, bins int) Histogram {
	if len(values) == 0 {
		return NewHistogram(values, bins, 0, 1)
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1e-9
	}
	return NewHistogram(values, bins, lo, hi)
}

// BucketCenters returns the midpoints of each bucket.
func (h Histogram) BucketCenters() []float64 {
	out := make([]float64, len(h.Freq))
	w := (h.Hi - h.Lo) / float64(len(h.Freq))
	for i := range out {
		out[i] = h.Lo + (float64(i)+0.5)*w
	}
	return out
}

// KLDivergence returns D_KL(p || q) over two frequency vectors of equal
// length, with epsilon smoothing so empty buckets do not produce infinities.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("stats: KL length mismatch %d vs %d", len(p), len(q)))
	}
	const eps = 1e-10
	d := 0.0
	for i := range p {
		pi := p[i] + eps
		qi := q[i] + eps
		d += pi * math.Log(pi/qi)
	}
	return d
}

// TotalVariation returns ½·Σ|p−q|, in [0, 1] for normalized inputs.
func TotalVariation(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("stats: TV length mismatch %d vs %d", len(p), len(q)))
	}
	s := 0.0
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2
}

// Wasserstein1 returns the 1-Wasserstein (earth mover's) distance between
// two empirical samples, computed exactly via sorted quantile coupling.
func Wasserstein1(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: Wasserstein1 of empty sample")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	// Integrate |F_a^{-1}(t) − F_b^{-1}(t)| over t with a grid fine
	// enough for both samples.
	n := len(as) * len(bs)
	if n > 1<<20 {
		n = 1 << 20
	}
	s := 0.0
	for i := 0; i < n; i++ {
		t := (float64(i) + 0.5) / float64(n)
		s += math.Abs(quantile(as, t) - quantile(bs, t))
	}
	return s / float64(n)
}

func quantile(sorted []float64, t float64) float64 {
	idx := int(t * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Summary holds the basic moments of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max, Median float64
}

// Summarize computes a Summary of values.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{N: len(values)}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = sorted[len(sorted)/2]
	for _, v := range values {
		s.Mean += v
	}
	s.Mean /= float64(len(values))
	ss := 0.0
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(values)))
	return s
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It is the quantity inside the paper's Eq 1 (before the λ scaling and
// absolute value). Returns 0 when either input is constant.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	n := float64(len(x))
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
