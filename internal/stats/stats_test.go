package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHistogramCounts(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3}, 4, 0, 4)
	for i, f := range h.Freq {
		if f != 0.25 {
			t.Fatalf("bucket %d = %v, want 0.25", i, f)
		}
	}
	if h.N != 4 {
		t.Fatalf("N = %d", h.N)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram([]float64{-100, 100}, 2, 0, 1)
	if h.Freq[0] != 0.5 || h.Freq[1] != 0.5 {
		t.Fatalf("freq = %v", h.Freq)
	}
}

func TestHistogramEmptyInput(t *testing.T) {
	h := NewHistogram(nil, 3, 0, 1)
	for _, f := range h.Freq {
		if f != 0 {
			t.Fatal("empty histogram must be all zeros")
		}
	}
}

func TestHistogramBadArgsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(nil, 0, 0, 1) },
		func() { NewHistogram(nil, 3, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAutoHistogramSpansData(t *testing.T) {
	h := AutoHistogram([]float64{-3, 0, 9}, 4)
	if h.Lo != -3 || h.Hi != 9 {
		t.Fatalf("auto range [%v, %v]", h.Lo, h.Hi)
	}
	s := 0.0
	for _, f := range h.Freq {
		s += f
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("sums to %v", s)
	}
}

func TestAutoHistogramConstantData(t *testing.T) {
	h := AutoHistogram([]float64{5, 5, 5}, 3)
	s := 0.0
	for _, f := range h.Freq {
		s += f
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("constant-data histogram sums to %v", s)
	}
}

func TestBucketCenters(t *testing.T) {
	h := NewHistogram([]float64{0}, 2, 0, 4)
	c := h.BucketCenters()
	if c[0] != 1 || c[1] != 3 {
		t.Fatalf("centers = %v", c)
	}
}

func TestKLDivergenceProperties(t *testing.T) {
	p := []float64{0.5, 0.5}
	if d := KLDivergence(p, p); math.Abs(d) > 1e-9 {
		t.Fatalf("KL(p,p) = %v", d)
	}
	q := []float64{0.9, 0.1}
	if d := KLDivergence(p, q); d <= 0 {
		t.Fatalf("KL(p,q) = %v, want > 0", d)
	}
}

func TestTotalVariation(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if tv := TotalVariation(p, q); tv != 1 {
		t.Fatalf("TV = %v, want 1", tv)
	}
	if tv := TotalVariation(p, p); tv != 0 {
		t.Fatalf("TV(p,p) = %v", tv)
	}
}

func TestWasserstein1Shift(t *testing.T) {
	a := []float64{0, 1, 2, 3}
	b := []float64{5, 6, 7, 8}
	if w := Wasserstein1(a, b); math.Abs(w-5) > 0.01 {
		t.Fatalf("W1 of shifted sample = %v, want 5", w)
	}
}

func TestWasserstein1Identity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 100)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	if w := Wasserstein1(a, a); w > 1e-9 {
		t.Fatalf("W1(a,a) = %v", w)
	}
}

// Property: W1 is symmetric and non-negative.
func TestWasserstein1SymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 30)
		b := make([]float64, 50)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()*2 + 1
		}
		ab := Wasserstein1(a, b)
		ba := Wasserstein1(b, a)
		return ab >= 0 && math.Abs(ab-ba) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Median != 3 { // upper median for even n
		t.Fatalf("median = %v", s.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatalf("empty summary N = %d", empty.N)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Fatalf("Pearson = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(x, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("Pearson = %v, want -1", r)
	}
}

func TestPearsonConstantInput(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("Pearson with constant x = %v, want 0", r)
	}
}

// Property: Pearson is invariant to positive affine transforms of either
// argument.
func TestPearsonAffineInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 40)
		y := make([]float64, 40)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = x[i]*0.5 + rng.NormFloat64()
		}
		r1 := Pearson(x, y)
		x2 := make([]float64, len(x))
		for i := range x {
			x2[i] = 3*x[i] + 7
		}
		r2 := Pearson(x2, y)
		return math.Abs(r1-r2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 25)
		y := make([]float64, 25)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Pearson(x, y)
		return r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for _, f := range []func(){
		func() { KLDivergence([]float64{1}, []float64{1, 2}) },
		func() { TotalVariation([]float64{1}, []float64{1, 2}) },
		func() { Pearson([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
