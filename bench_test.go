// Package repro's top-level benchmarks regenerate every table and figure of
// the paper through the experiment drivers (quick-mode workloads; run
// cmd/dacrepro without -quick for the full configurations recorded in
// EXPERIMENTS.md), plus the ablations from DESIGN.md §5 and
// micro-benchmarks of the substrate primitives the attack flow is built on.
//
// Experiment benchmarks share one cached environment: the first iteration
// of each benchmark pays for its model training, later iterations measure
// the driver's scoring/rendering path against cached runs.
package repro

import (
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/compute"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/img"
	"repro/internal/nn"
	"repro/internal/quantize"
	"repro/internal/tensor"
	"repro/internal/train"
)

var (
	benchEnv  *experiments.Env
	benchOnce sync.Once
)

func env() *experiments.Env {
	benchOnce.Do(func() {
		benchEnv = experiments.NewEnv(1, true, io.Discard)
	})
	return benchEnv
}

// --- one benchmark per paper artifact ---

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(env())
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(env())
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(env())
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table4(env())
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig2(env())
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig3(env())
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4(env())
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(env())
	}
}

// --- ablations (DESIGN.md §5) ---

func BenchmarkAblationPreprocess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationPreprocess(env())
	}
}

func BenchmarkAblationLayerwise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationLayerwise(env())
	}
}

func BenchmarkAblationQuantizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationQuantizer(env())
	}
}

func BenchmarkAblationFinetune(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationFinetune(env())
	}
}

func BenchmarkAblationPruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationPruning(env())
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(64, 64).RandN(rng, 0, 1)
	y := tensor.New(64, 64).RandN(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

// Serial-vs-parallel pairs: the parallel variants use the shared context for
// the current GOMAXPROCS, so running with -cpu 1,2,4 sweeps the worker count
// (the determinism suite guarantees the outputs are identical either way).

func benchConvForward(b *testing.B, ctx *compute.Ctx) {
	rng := rand.New(rand.NewSource(2))
	conv := nn.NewConv2D("c", 12, 12, 12, 24, 3, 1, 1, rng)
	x := tensor.New(32, 12, 12, 12).RandN(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(ctx, x, false)
	}
}

func BenchmarkConvForward(b *testing.B)       { benchConvForward(b, compute.Get(0)) }
func BenchmarkConvForwardSerial(b *testing.B) { benchConvForward(b, compute.Serial()) }

func benchConvBackward(b *testing.B, ctx *compute.Ctx) {
	rng := rand.New(rand.NewSource(3))
	conv := nn.NewConv2D("c", 12, 12, 12, 24, 3, 1, 1, rng)
	x := tensor.New(32, 12, 12, 12).RandN(rng, 0, 1)
	out := conv.Forward(ctx, x, true)
	g := tensor.New(out.Shape()...).RandN(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Backward(ctx, g)
	}
}

func BenchmarkConvBackward(b *testing.B)       { benchConvBackward(b, compute.Get(0)) }
func BenchmarkConvBackwardSerial(b *testing.B) { benchConvBackward(b, compute.Serial()) }

func benchTrainEpoch(b *testing.B, threads int) {
	d := dataset.SyntheticCIFAR(dataset.CIFARConfig{
		N: 256, Classes: 10, H: 12, W: 12, Seed: 1,
		ContrastStd: 0.32, NoiseStd: 25, TemplateShare: 0.6,
	})
	x, y := d.Tensors()
	m := nn.NewResNet(nn.ResNetConfig{
		InC: 1, InH: 12, InW: 12, Classes: 10,
		Widths: []int{6, 12, 24}, Blocks: []int{2, 2, 2}, Seed: 1,
	})
	opt := train.NewSGD(0.05, 0.9, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		train.Run(m, x, y, train.Config{
			Epochs: 1, BatchSize: 32, Optimizer: opt, Seed: int64(i),
			Threads: threads,
		})
	}
}

func BenchmarkTrainEpoch(b *testing.B)       { benchTrainEpoch(b, 0) }
func BenchmarkTrainEpochSerial(b *testing.B) { benchTrainEpoch(b, 1) }

func BenchmarkCorrelationRegApply(b *testing.B) {
	m := nn.NewResNet(nn.ResNetConfig{
		InC: 1, InH: 12, InW: 12, Classes: 10,
		Widths: []int{6, 12, 24}, Blocks: []int{2, 2, 2}, Seed: 1,
	})
	rng := rand.New(rand.NewSource(4))
	secret := make([]float64, m.NumWeightParams())
	for i := range secret {
		secret[i] = rng.Float64() * 255
	}
	reg := attack.NewUniformReg(m, 5, secret)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Apply(m)
	}
}

func benchWeights(n int) []float64 {
	rng := rand.New(rand.NewSource(5))
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.05
	}
	return w
}

func BenchmarkWeightedEntropyFit(b *testing.B) {
	w := benchWeights(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quantize.WeightedEntropy{}.Fit(w, 16)
	}
}

func BenchmarkTargetCorrelatedFit(b *testing.B) {
	d := dataset.SyntheticCIFAR(dataset.CIFARConfig{
		N: 40, Classes: 10, H: 12, W: 12, Seed: 2,
		ContrastStd: 0.32, NoiseStd: 25,
	})
	w := benchWeights(20000)
	q := quantize.TargetCorrelated{Targets: d.Images}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Fit(w, 16)
	}
}

func BenchmarkDecodeGroup(b *testing.B) {
	d := dataset.SyntheticCIFAR(dataset.CIFARConfig{
		N: 400, Classes: 10, H: 12, W: 12, Seed: 3,
		ContrastStd: 0.32, NoiseStd: 25,
	})
	m := nn.NewMLP("m", 144, []int{128}, 10, 1)
	group := m.GroupsByConvIndex(nil)[0]
	plan := attack.UniformPlan(d, group, 5, 1)
	opt := attack.DecodeOptions{TargetMean: 128, TargetStd: 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attack.DecodeGroup(plan.Groups[0], group, plan.ImageGeom, opt)
	}
}

func BenchmarkSSIM(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := img.New(1, 24, 24)
	c := img.New(1, 24, 24)
	for i := range a.Pix {
		a.Pix[i] = rng.Float64() * 255
		c.Pix[i] = rng.Float64() * 255
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.SSIM(a, c)
	}
}
