// Command dacrepro regenerates the paper's tables and figures. Usage:
//
//	dacrepro [flags] <experiment>...
//
// where each experiment is one of: table1 table2 table3 table4 fig2 fig3
// fig4 fig5 ablations all. Runs within one invocation share trained models
// through an in-process cache (Fig 4, for example, reuses Table I and
// Table III models).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/artifact"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	seed := flag.Int64("seed", 1, "global experiment seed")
	quick := flag.Bool("quick", false, "shrunken datasets and epochs (smoke test)")
	verbose := flag.Bool("v", false, "log per-run training progress")
	outDir := flag.String("outdir", "", "directory for image artifacts (fig5)")
	threads := flag.Int("threads", 0, "worker threads per model pass (0 = all cores; results identical for any value)")
	traceOut := flag.String("trace-out", "", "write a phase-span timing report to this file at exit (\"-\" for stderr)")
	cacheDir := flag.String("cache-dir", "", "persistent artifact store; stages with cached results are skipped across invocations")
	resume := flag.Bool("resume", false, "with -cache-dir: continue interrupted training runs from their latest epoch checkpoint")
	var dcli dist.CLI
	dcli.Register(flag.CommandLine)
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: dacrepro [flags] {table1|table2|table3|table4|fig2|fig3|fig4|fig5|ablations|all}...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	sess, fleet, err := dcli.Resolve(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "dacrepro: %v\n", err)
		os.Exit(2)
	}
	worker := sess != nil && sess.Worker()
	if worker {
		// Workers contribute gradient shards to the coordinator's training
		// runs; the coordinator alone owns the run's outputs (tables,
		// figures, traces, progress lines).
		*verbose, *traceOut, *outDir = false, "", ""
	}

	tableOut := io.Writer(os.Stdout)
	if worker {
		tableOut = io.Discard
	}
	env := experiments.NewEnv(*seed, *quick, tableOut)
	env.Threads = *threads
	env.Dist = sess
	env.Shards = dcli.Shards
	if *cacheDir != "" {
		store, err := artifact.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dacrepro: %v\n", err)
			os.Exit(1)
		}
		env.Cache = store
		env.Resume = *resume
		if !worker {
			defer func() {
				st := store.Stats()
				fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d bytes read, %d bytes written\n",
					st.Hits, st.Misses, st.ReadBytes, st.WriteBytes)
			}()
		}
	} else if *resume {
		fmt.Fprintln(os.Stderr, "dacrepro: -resume requires -cache-dir")
		os.Exit(2)
	}
	if *verbose {
		env.Log = os.Stderr
	}
	if *traceOut != "" {
		obs.Enable(true)
		env.Trace = obs.NewTracer()
		defer writeTrace(*traceOut, env.Trace)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dacrepro: %v\n", err)
			os.Exit(1)
		}
		env.OutDir = *outDir
	}

	all := map[string]func(){
		"table1":    func() { experiments.Table1(env) },
		"table2":    func() { experiments.Table2(env) },
		"table3":    func() { experiments.Table3(env) },
		"table4":    func() { experiments.Table4(env) },
		"fig2":      func() { experiments.Fig2(env) },
		"fig3":      func() { experiments.Fig3(env) },
		"fig4":      func() { experiments.Fig4(env) },
		"fig5":      func() { experiments.Fig5(env) },
		"ablations": func() { runAblations(env) },
		"pruning":   func() { experiments.AblationPruning(env) },
	}
	order := []string{"table1", "table2", "table3", "table4", "fig2", "fig3", "fig4", "fig5", "ablations"}

	for _, name := range args {
		if name == "all" {
			for _, n := range order {
				fmt.Printf("### %s\n\n", n)
				all[n]()
			}
			continue
		}
		f, ok := all[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "dacrepro: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("### %s\n\n", name)
		f()
	}

	if err := fleet.Wait(); err != nil {
		fmt.Fprintf(os.Stderr, "dacrepro: %v\n", err)
		os.Exit(1)
	}
}

// writeTrace renders the span-tree timing report to path ("-" = stderr).
func writeTrace(path string, tr *obs.Tracer) {
	if path == "-" {
		tr.WriteReport(os.Stderr)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dacrepro: trace-out: %v\n", err)
		return
	}
	defer f.Close()
	tr.WriteReport(f)
	fmt.Fprintf(os.Stderr, "wrote phase trace to %s\n", path)
}

func runAblations(env *experiments.Env) {
	experiments.AblationPreprocess(env)
	experiments.AblationLayerwise(env)
	experiments.AblationQuantizer(env)
	experiments.AblationFinetune(env)
	experiments.AblationPruning(env)
}
