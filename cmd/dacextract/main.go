// Command dacextract plays the adversary's side of the threat model: given
// only a released model file (produced by dacrelease or any pipeline using
// this repo's training code), it reconstructs the training images embedded
// in the weights. It knows nothing about the training run except what the
// adversary's own algorithm fixed in advance: the layer-group bounds, the
// image geometry, and the domain pixel statistics the pre-processing
// selected for.
//
//	dacextract -model released.bin -out stolen/ [-truth dir]
//
// With -truth (a directory of PGMs written by dacrelease), the extraction
// is also scored against the ground truth.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/artifact"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/modelio"
	"repro/internal/obs"
)

func main() {
	preset := core.CIFARRelease()
	modelPath := flag.String("model", "released.bin", "released model file")
	outDir := flag.String("out", "stolen", "output directory for reconstructed PGMs")
	truthDir := flag.String("truth", "", "optional ground-truth PGM directory for scoring")
	bounds := flag.String("bounds", preset.BoundsCSV(), "conv-index group bounds (the adversary's own constant)")
	geom := flag.String("geom", preset.GeomString(), "payload image geometry CxHxW")
	mean := flag.Float64("mean", preset.DecodeMean, "domain pixel mean for the moment decode")
	std := flag.Float64("std", preset.DecodeStd, "domain pixel std for the moment decode")
	ascii := flag.Bool("ascii", false, "also print ASCII previews of the first reconstructions")
	audit := flag.Bool("audit", false, "defender mode: run the distributional audit instead of extracting")
	threads := flag.Int("threads", 0, "worker threads for model forward passes (0 = all cores)")
	traceOut := flag.String("trace-out", "", "write a phase-span timing report to this file at exit (\"-\" for stderr)")
	cacheDir := flag.String("cache-dir", "", "persistent artifact store; a repeat extraction of the same model file is served from cache")
	flag.Parse()

	var tracer *obs.Tracer
	if *traceOut != "" {
		obs.Enable(true)
		tracer = obs.NewTracer()
		defer writeTrace(*traceOut, tracer)
	}

	var store *artifact.Store
	if *cacheDir != "" {
		var err error
		if store, err = artifact.Open(*cacheDir); err != nil {
			fatal(err)
		}
	}

	sp := tracer.Span("extract/load")
	rm, digest, err := modelio.LoadWithDigest(*modelPath)
	if err != nil {
		fatal(err)
	}
	m, _, err := modelio.Import(rm)
	if err != nil {
		fatal(err)
	}
	m.SetThreads(*threads)
	sp.End()

	gb, err := parseInts(*bounds)
	if err != nil {
		fatal(fmt.Errorf("bad -bounds: %w", err))
	}
	if *audit {
		rep := attack.AuditModel(m, gb, 0)
		fmt.Printf("distributional audit (threshold %.2f):\n", rep.Threshold)
		fmt.Printf("  global weight distribution: %.3f\n", rep.Global)
		for _, g := range rep.PerGroup {
			fmt.Printf("  %-8s %.3f\n", g.Name, g.Score)
		}
		if rep.Suspicious {
			fmt.Println("verdict: SUSPICIOUS — weight distribution is far from benign-Gaussian")
			os.Exit(3)
		}
		fmt.Println("verdict: no distributional anomaly detected")
		return
	}
	var c, h, w int
	if _, err := fmt.Sscanf(*geom, "%dx%dx%d", &c, &h, &w); err != nil {
		fatal(fmt.Errorf("bad -geom: %w", err))
	}
	u := c * h * w

	groups := m.GroupsByConvIndex(gb)
	encodingGroup := groups[len(groups)-1]
	capacity := attack.Capacity(encodingGroup.NumEl, u)
	fmt.Printf("model: %d weights, encoding group %q holds up to %d %dx%dx%d images\n",
		m.NumWeightParams(), encodingGroup.Name, capacity, c, h, w)

	// The extraction is a pure function of the released model bytes and
	// the adversary's own constants, so a repeat run over the same model
	// file can be served from the artifact store.
	var key string
	if store != nil {
		key = artifact.NewKey("extract-cli/v1").
			Str("model", digest).
			Ints("bounds", gb).
			Str("geom", *geom).
			Float("mean", *mean).
			Float("std", *std).
			Sum()
	}
	var recon []*img.Image
	if store != nil {
		if rc, err := store.Get("report", key); err == nil {
			rep, rerr := attack.ReadReport(rc)
			rc.Close()
			if rerr == nil {
				recon = rep.Recon
				fmt.Println("cache: extraction served from store")
			} else {
				fmt.Fprintf(os.Stderr, "dacextract: cached report unusable, re-extracting: %v\n", rerr)
				store.Delete("report", key)
			}
		}
	}
	if recon == nil {
		// Fabricate a plan describing where the payload lives; the
		// adversary derives this from its own algorithm, not from the
		// training run.
		pg := attack.PlanGroup{GroupIndex: len(groups) - 1}
		for i := 0; i < capacity; i++ {
			pg.Images = append(pg.Images, img.New(c, h, w)) // placeholders for count
		}
		opt := attack.DecodeOptions{TargetMean: *mean, TargetStd: *std}
		sp = tracer.Span("extract/decode")
		recon = attack.DecodeGroup(pg, encodingGroup, [3]int{c, h, w}, opt)
		sp.End()
		if store != nil {
			err := store.Put("report", key, func(w io.Writer) error {
				return attack.WriteReport(w, &attack.Report{Recon: recon})
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dacextract: cache write failed: %v\n", err)
			}
		}
	}

	sp = tracer.Span("extract/save")
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for i, im := range recon {
		path := filepath.Join(*outDir, fmt.Sprintf("stolen_%03d.pgm", i))
		if err := im.Clone().Clamp().SavePNM(path); err != nil {
			fatal(err)
		}
	}
	sp.End()
	fmt.Printf("extracted %d images to %s\n", len(recon), *outDir)

	if *ascii {
		n := 4
		if len(recon) < n {
			n = len(recon)
		}
		fmt.Println(img.SideBySideASCII(clampAll(recon[:n]), 2))
	}

	if *truthDir != "" {
		truth, err := loadPGMs(*truthDir)
		if err != nil {
			fatal(err)
		}
		// The decode polarity heuristic cannot see the originals; score
		// both polarities and report the better one, as a human adversary
		// flipping through the images would.
		score := attack.ScoreReconstructions(truth, recon)
		inverted := make([]*img.Image, len(recon))
		for i, im := range recon {
			inv := im.Clone()
			for p := range inv.Pix {
				inv.Pix[p] = 255 - inv.Pix[p]
			}
			inverted[i] = inv
		}
		if s2 := attack.ScoreReconstructions(truth, inverted); s2.MeanMAPE < score.MeanMAPE {
			score = s2
		}
		fmt.Printf("scored against %d ground-truth images: %s\n", len(truth), score)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func loadPGMs(dir string) ([]*img.Image, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".pgm") || strings.HasSuffix(e.Name(), ".ppm") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []*img.Image
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		im, err := img.ReadPNM(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, im)
	}
	return out, nil
}

func clampAll(images []*img.Image) []*img.Image {
	out := make([]*img.Image, len(images))
	for i, im := range images {
		out[i] = im.Clone().Clamp()
	}
	return out
}

// writeTrace renders the span-tree timing report to path ("-" = stderr).
func writeTrace(path string, tr *obs.Tracer) {
	if path == "-" {
		tr.WriteReport(os.Stderr)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dacextract: trace-out: %v\n", err)
		return
	}
	defer f.Close()
	tr.WriteReport(f)
	fmt.Fprintf(os.Stderr, "wrote phase trace to %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dacextract:", err)
	os.Exit(1)
}
