// Command dacgateway fronts a pool of dacserve replicas with one HTTP
// endpoint — the fleet half of the serving subsystem. Requests to
// /v1/predict are routed by consistent hashing on the model name (so one
// model's traffic concentrates on its owner replica, spilling to ring
// neighbors only under the bounded-load rule), replicas are health-checked
// continuously (/healthz + /readyz) and ejected from the ring the moment
// they go down or start draining, and transient failures get one retry on
// the next ring candidate:
//
//	dacgateway -listen :8090 -replica r0=http://127.0.0.1:8080 -replica r1=http://127.0.0.1:8081
//
//	curl -d '{"model":"prod","input":[...]}' localhost:8090/v1/predict
//	curl localhost:8090/v1/models          # fleet-wide digest consistency
//	curl localhost:8090/statsz             # per-replica state and counters
//
// With -assign name=digest the gateway advertises which release every
// replica should serve; POST /v1/models/{name}:reload rolls the fleet onto
// a new digest one replica at a time (cordon, drain, push, uncordon) with
// zero dropped requests, provided replicas share an artifact store
// (dacserve -store) holding the published release (dacrelease -store).
//
// Every predict gets a 128-bit trace ID propagated to the replica in
// X-Dac-Trace; GET /tracez shows recent/slowest/error traces with routing
// and per-attempt spans, -access-log writes one JSON line per request, and
// -pprof exposes net/http/pprof under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
	"repro/internal/obs"
)

// replicaFlags collects repeated -replica [name=]url pairs in order; a
// bare url is named rN by position.
type replicaFlags []struct{ id, url string }

func (r *replicaFlags) String() string { return fmt.Sprintf("%d replicas", len(*r)) }

func (r *replicaFlags) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok {
		id, url = fmt.Sprintf("r%d", len(*r)), v
	}
	if id == "" || url == "" {
		return fmt.Errorf("want [name=]url, got %q", v)
	}
	*r = append(*r, struct{ id, url string }{id, url})
	return nil
}

// assignFlags collects repeated -assign model=digest pairs.
type assignFlags []struct{ model, digest string }

func (a *assignFlags) String() string { return fmt.Sprintf("%d assignments", len(*a)) }

func (a *assignFlags) Set(v string) error {
	model, digest, ok := strings.Cut(v, "=")
	if !ok || model == "" || digest == "" {
		return fmt.Errorf("want model=digest, got %q", v)
	}
	*a = append(*a, struct{ model, digest string }{model, digest})
	return nil
}

func main() {
	var replicas replicaFlags
	var assigns assignFlags
	flag.Var(&replicas, "replica", "dacserve replica as [name=]url (repeatable)")
	flag.Var(&assigns, "assign", "advertised release as model=digest (repeatable; /v1/models checks the fleet against it)")
	listen := flag.String("listen", ":8090", "HTTP listen address")
	probeEvery := flag.Duration("probe-interval", 2*time.Second, "active health-check period")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "timeout for one /healthz + /readyz probe pair")
	failAfter := flag.Int("fail-after", 2, "consecutive failures before a replica is marked down")
	reviveAfter := flag.Int("revive-after", 2, "consecutive ready probes before a down replica rejoins")
	loadFactor := flag.Float64("load-factor", 1.25, "bounded-load limit relative to the pool mean before spilling to the next ring node")
	maxInflight := flag.Int("max-inflight", 256, "hard per-replica in-flight cap; requests are shed with 503 when every candidate is at it")
	retryBackoff := flag.Duration("retry-backoff", 25*time.Millisecond, "pause before the single retry on another replica")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "timeout for one proxied predict attempt")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (opt-in)")
	accessLog := flag.String("access-log", "", `structured JSON access log destination: "-" for stdout, else a file to append to`)
	flag.Parse()
	if len(replicas) == 0 {
		fatal(errors.New("at least one -replica url is required"))
	}

	logW, err := openAccessLog(*accessLog)
	if err != nil {
		fatal(err)
	}
	g := gateway.New(gateway.Options{
		ProbeInterval:  *probeEvery,
		ProbeTimeout:   *probeTimeout,
		FailAfter:      *failAfter,
		ReviveAfter:    *reviveAfter,
		LoadFactor:     *loadFactor,
		MaxInflight:    *maxInflight,
		RetryBackoff:   *retryBackoff,
		RequestTimeout: *reqTimeout,
		Obs:            obs.NewRegistry(), // the gateway's own metrics instance
		AccessLog:      logW,
	})
	for _, r := range replicas {
		if _, err := g.AddReplica(r.id, r.url); err != nil {
			fatal(err)
		}
		fmt.Printf("replica %s at %s\n", r.id, r.url)
	}
	for _, a := range assigns {
		g.SetAssignment(a.model, a.digest)
		fmt.Printf("assignment: %s -> %s\n", a.model, a.digest)
	}

	// One synchronous probe pass before accepting traffic, so the first
	// request already routes over real health state.
	ctx, cancel := context.WithTimeout(context.Background(), *probeTimeout+time.Second)
	eligible := g.ProbeAll(ctx)
	cancel()
	fmt.Printf("initial probe: %d/%d replicas ready\n", eligible, len(replicas))
	g.Start()

	mux := http.NewServeMux()
	mux.Handle("/", gateway.NewServer(g).Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("pprof enabled at %s/debug/pprof/\n", *listen)
	}
	srv := &http.Server{Addr: *listen, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("gateway over %d replica(s) on %s\n", len(replicas), *listen)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("received %s, draining\n", sig)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "dacgateway: shutdown:", err)
	}
	g.Close() // stop the prober
	fmt.Println("bye")
}

// openAccessLog resolves the -access-log flag: "" disables, "-" is stdout,
// anything else appends to the named file.
func openAccessLog(dest string) (io.Writer, error) {
	switch dest {
	case "":
		return nil, nil
	case "-":
		return os.Stdout, nil
	default:
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("open -access-log: %w", err)
		}
		return f, nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dacgateway:", err)
	os.Exit(1)
}
