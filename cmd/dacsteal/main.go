// Command dacsteal runs the model-extraction attack against a live
// dacserve or dacgateway prediction endpoint — the query-only adversary of
// the serving threat model. It spends a bounded query budget harvesting
// input→output pairs over the public /v1 API, distills a surrogate network
// from them, and reports how faithfully the surrogate imitates the victim:
//
//	dacsteal -url http://localhost:8080 -model prod \
//	    -budget 2000 -strategy prior -victim released.bin -out report.json
//
// The victim's input shape and class count are read off GET /v1/models
// (reconnaissance the API hands out for free); the surrogate architecture
// is the shared CIFAR preset resized to that shape. -strategy picks how
// queries are synthesized: "random" (uniform pixels, zero knowledge),
// "jitter" (Gaussian perturbations of attacker-held samples), or "prior"
// (draws from an attacker-side synthetic dataset — strongest per query).
//
// With -victim pointing at the defender's reference copy of the released
// model, the report includes top-1 agreement and test-accuracy fidelity
// metrics computed offline (no extra queries). Without it, only the spend
// and harvest are reported. -save-surrogate writes the stolen model as a
// released model file, loadable by dacserve like any other.
//
// The run is deterministic in -seed: same endpoint state, same budget,
// same strategy, same seed — same surrogate, same report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/extract"
	"repro/internal/modelio"
	"repro/internal/nn"
)

func main() {
	url := flag.String("url", "", "base URL of the victim endpoint (dacserve or dacgateway)")
	model := flag.String("model", "prod", "victim model name")
	clientID := flag.String("client", "dacsteal", "client identity sent as X-Dac-Client")
	budget := flag.Int("budget", 2000, "total victim samples the attacker spends")
	batch := flag.Int("batch", 64, "samples per predict request")
	strategy := flag.String("strategy", "prior", "query synthesis: random, jitter, or prior")
	jitterSigma := flag.Float64("jitter-sigma", 0.05, "per-pixel noise std for -strategy jitter")
	poolN := flag.Int("pool", 2000, "attacker-side sample pool size (jitter seeds / prior draws)")
	seed := flag.Int64("seed", 1, "RNG seed for query synthesis and distillation")
	dataSeed := flag.Int64("data-seed", 4242, "seed of the attacker's own synthetic data pool")
	epochs := flag.Int("epochs", 30, "distillation epochs over the harvest")
	lr := flag.Float64("lr", 0.003, "distillation Adam learning rate")
	trainBatch := flag.Int("train-batch", 32, "distillation minibatch size")
	threads := flag.Int("threads", 0, "surrogate compute threads (0 = all cores)")
	victimPath := flag.String("victim", "", "defender's reference copy of the released model (enables fidelity metrics)")
	evalN := flag.Int("eval-n", 1000, "held-out evaluation samples for fidelity metrics")
	evalSeed := flag.Int64("eval-seed", 777, "seed of the held-out evaluation set")
	saveSurrogate := flag.String("save-surrogate", "", "write the stolen surrogate as a released model file")
	out := flag.String("out", "", "JSON report destination (default stdout)")
	flag.Parse()
	if *url == "" {
		fatal(fmt.Errorf("-url is required"))
	}

	client := extract.NewClient(*url, *model, *clientID)
	shape, err := client.Shape()
	if err != nil {
		fatal(err)
	}
	if len(shape.InputShape) != 3 {
		fatal(fmt.Errorf("victim input shape %v is not C,H,W", shape.InputShape))
	}
	c, h, w := shape.InputShape[0], shape.InputShape[1], shape.InputShape[2]
	fmt.Fprintf(os.Stderr, "victim %q: input %dx%dx%d, %d classes, digest %s\n",
		shape.Name, c, h, w, shape.Classes, short(shape.Digest))

	// The surrogate is the shared preset architecture resized to the
	// victim's advertised shape — the attacker's guess, not the victim's
	// actual architecture.
	preset := core.CIFARRelease()
	arch := preset.ArchConfig(*seed)
	arch.InC, arch.InH, arch.InW, arch.Classes = c, h, w, shape.Classes

	// The attacker's own data pool: a synthetic dataset in the victim's
	// geometry under the attacker's seed — in-distribution knowledge the
	// jitter and prior strategies assume, disjoint from anything the
	// victim trained on.
	var pool [][]float64
	if *strategy != "random" {
		cfg := preset.DataConfig(*poolN, *dataSeed)
		cfg.H, cfg.W, cfg.Classes = h, w, shape.Classes
		cfg.RGB = c == 3
		px, _ := dataset.SyntheticCIFAR(cfg).Tensors()
		pool = tensorRows(px)
	}
	strat, err := extract.ByName(*strategy, c*h*w, pool, *jitterSigma)
	if err != nil {
		fatal(err)
	}
	cfg := extract.Config{
		Budget: *budget, BatchSize: *batch, Strategy: strat, Seed: *seed,
		Surrogate: arch, Epochs: *epochs, LR: *lr, TrainBatch: *trainBatch,
		Threads: *threads,
	}

	var rep *extract.Report
	var surrogate *nn.Model
	if *victimPath != "" {
		rm, _, err := modelio.LoadWithDigest(*victimPath)
		if err != nil {
			fatal(err)
		}
		victimModel, _, err := modelio.Import(rm)
		if err != nil {
			fatal(err)
		}
		ecfg := preset.DataConfig(*evalN, *evalSeed)
		ecfg.H, ecfg.W, ecfg.Classes = h, w, shape.Classes
		ecfg.RGB = c == 3
		testX, testY := dataset.SyntheticCIFAR(ecfg).Tensors()
		rep, surrogate, err = extract.Run(client, victimModel, testX, testY, cfg)
		if err != nil {
			fatal(err)
		}
	} else {
		harvest, err := extract.HarvestQueries(client, cfg)
		if err != nil {
			fatal(err)
		}
		surrogate = extract.Distill(harvest, cfg)
		rep = &extract.Report{
			Strategy: strat.Name(), Budget: *budget,
			Queries: harvest.Queries, Requests: harvest.Requests,
			Harvested: len(harvest.Inputs), Denied: harvest.Denied,
			SoftLabels: harvest.Soft, Mode: harvest.Mode,
		}
	}

	if *saveSurrogate != "" {
		rm, err := modelio.Export(surrogate, arch, nil)
		if err != nil {
			fatal(err)
		}
		if err := modelio.Save(*saveSurrogate, rm); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "surrogate saved to %s\n", *saveSurrogate)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
}

// tensorRows slices an (N, sample) tensor into per-row float slices.
func tensorRows(x interface {
	Data() []float64
	Dim(int) int
}) [][]float64 {
	n := x.Dim(0)
	d := x.Data()
	sample := len(d) / n
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = d[i*sample : (i+1)*sample]
	}
	return rows
}

func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dacsteal:", err)
	os.Exit(1)
}
