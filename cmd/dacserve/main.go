// Command dacserve puts released model files behind the serving subsystem's
// HTTP API — the deployment half of the threat model. A provider that
// received a model from an outside trainer can serve predictions from it
// (micro-batched across concurrent clients, bit-identical to an offline
// forward pass) and audit it in place for embedded training data:
//
//	dacserve -listen :8080 -model prod=released.bin -model canary=other.bin
//
//	curl -d '{"model":"prod","input":[...]}' localhost:8080/v1/predict
//	curl -X POST localhost:8080/v1/models/prod:audit
//	curl localhost:8080/metricsz        # Prometheus text exposition
//
// -models dir sniffs every file in dir by magic header and serves each
// released model under its file name (extension stripped); non-model files
// and bare quantization records are reported and skipped, so one directory
// can mix full-precision and quantized releases. -native serves quantized
// releases codebook-native: forward passes read the released codebooks and
// uint8 indices through LUT kernels instead of materialized float weights —
// bit-identical predictions, strictly lower resident memory.
//
// -pprof additionally exposes net/http/pprof under /debug/pprof/, and -obs
// turns on the deep runtime instrumentation (compute pool timings).
//
// Shutdown on SIGINT/SIGTERM is graceful: the listener stops accepting,
// in-flight requests drain through final batched passes, then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// modelFlags collects repeated -model name=path pairs in order.
type modelFlags []struct{ name, path string }

func (m *modelFlags) String() string { return fmt.Sprintf("%d models", len(*m)) }

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

func main() {
	preset := core.CIFARRelease()
	var models modelFlags
	flag.Var(&models, "model", "model to serve as name=path (repeatable)")
	modelsDir := flag.String("models", "", "directory of released models; files are sniffed by header, served under file name minus extension")
	native := flag.Bool("native", false, "serve quantized releases codebook-native (LUT kernels over released indices; bit-identical, lower resident memory)")
	listen := flag.String("listen", ":8080", "HTTP listen address")
	maxBatch := flag.Int("max-batch", 16, "max requests coalesced into one forward pass")
	queue := flag.Int("queue", 256, "per-model request queue depth (backpressure bound)")
	flush := flag.Duration("flush", 2*time.Millisecond, "batching flush window")
	threads := flag.Int("threads", 0, "worker threads per model engine (0 = all cores)")
	bounds := flag.String("bounds", preset.BoundsCSV(), "default conv-index group bounds for the audit endpoint")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (opt-in)")
	obsOn := flag.Bool("obs", false, "enable deep runtime instrumentation (compute pool timings) in /metricsz")
	flag.Parse()
	if len(models) == 0 && *modelsDir == "" {
		fatal(errors.New("at least one -model name=path or a -models dir is required"))
	}

	gb, err := parseInts(*bounds)
	if err != nil {
		fatal(fmt.Errorf("bad -bounds: %w", err))
	}
	reg := serve.NewRegistry(serve.Options{
		MaxBatch:    *maxBatch,
		QueueDepth:  *queue,
		FlushEvery:  *flush,
		Threads:     *threads,
		NativeQuant: *native,
	})
	loaded := 0
	announce := func(en *serve.Entry) {
		kind := "full-precision"
		switch {
		case en.Native:
			kind = "quantized (codebook-native)"
		case en.Quantized:
			kind = "quantized"
		}
		fmt.Printf("loaded %q: %s, %d params, %d bytes on disk, %d bytes resident (sha256 %s)\n",
			en.Name, kind, en.Params, en.Size.TotalBytes(), en.ResidentBytes(), en.Digest[:12])
		loaded++
	}
	if *modelsDir != "" {
		entries, skipped, err := reg.LoadDir(*modelsDir, serve.ModeAuto)
		if err != nil {
			fatal(err)
		}
		for _, en := range entries {
			announce(en)
		}
		for _, sk := range skipped {
			fmt.Printf("skipped %s: %s\n", sk.Path, sk.Reason)
		}
	}
	for _, m := range models {
		en, err := reg.LoadFile(m.name, m.path)
		if err != nil {
			fatal(err)
		}
		announce(en)
	}

	obs.Enable(*obsOn)
	mux := http.NewServeMux()
	mux.Handle("/", serve.NewServer(reg, gb).Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("pprof enabled at %s/debug/pprof/\n", *listen)
	}
	srv := &http.Server{Addr: *listen, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("serving %d model(s) on %s\n", loaded, *listen)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("received %s, draining\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "dacserve: shutdown:", err)
	}
	reg.Close() // answer anything already queued, then stop the engines
	fmt.Println("bye")
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dacserve:", err)
	os.Exit(1)
}
