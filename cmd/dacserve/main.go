// Command dacserve puts released model files behind the serving subsystem's
// HTTP API — the deployment half of the threat model. A provider that
// received a model from an outside trainer can serve predictions from it
// (micro-batched across concurrent clients, bit-identical to an offline
// forward pass) and audit it in place for embedded training data:
//
//	dacserve -listen :8080 -model prod=released.bin -model canary=other.bin
//
//	curl -d '{"model":"prod","input":[...]}' localhost:8080/v1/predict
//	curl -X POST localhost:8080/v1/models/prod:audit
//	curl localhost:8080/metricsz        # Prometheus text exposition
//
// -models dir sniffs every file in dir by magic header and serves each
// released model under its file name (extension stripped); non-model files
// and bare quantization records are reported and skipped, so one directory
// can mix full-precision and quantized releases. -native serves quantized
// releases codebook-native: forward passes read the released codebooks and
// uint8 indices through LUT kernels instead of materialized float weights —
// bit-identical predictions, strictly lower resident memory.
//
// -pprof additionally exposes net/http/pprof under /debug/pprof/, and -obs
// turns on the deep runtime instrumentation (compute pool timings). Every
// predict is traced (adopting the gateway's X-Dac-Trace ID when fronted):
// GET /tracez shows recent/slowest/error traces with queue/compute spans,
// and -access-log writes one JSON line per request.
//
// With -store the replica attaches an artifact store of published releases
// (dacrelease -store): -pull name=digest loads models from it at startup,
// and POST /v1/models/{name}:load pulls by digest at runtime — how a
// dacgateway rolls a fleet onto new weights. The listener starts before
// any model loads; /readyz answers 503 "starting" until they finish, then
// 200, so a gateway never routes to a replica mid-startup.
//
// Shutdown on SIGINT/SIGTERM is graceful and gateway-aware: /readyz flips
// to 503 "draining" first, the process lingers -drain-grace so health
// probes observe the drain and eject the replica from routing, then the
// listener stops accepting, in-flight requests drain through final batched
// passes, and the process exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// modelFlags collects repeated -model name=path pairs in order.
type modelFlags []struct{ name, path string }

func (m *modelFlags) String() string { return fmt.Sprintf("%d models", len(*m)) }

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

// policyFlags collects repeated -policy name=JSON pairs in order.
type policyFlags []struct{ name, spec string }

func (p *policyFlags) String() string { return fmt.Sprintf("%d policies", len(*p)) }

func (p *policyFlags) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" || spec == "" {
		return fmt.Errorf(`want name={"mode":...}, got %q`, v)
	}
	*p = append(*p, struct{ name, spec string }{name, spec})
	return nil
}

// pullFlags collects repeated -pull name=digest pairs in order.
type pullFlags []struct{ name, digest string }

func (p *pullFlags) String() string { return fmt.Sprintf("%d pulls", len(*p)) }

func (p *pullFlags) Set(v string) error {
	name, digest, ok := strings.Cut(v, "=")
	if !ok || name == "" || digest == "" {
		return fmt.Errorf("want name=digest, got %q", v)
	}
	*p = append(*p, struct{ name, digest string }{name, digest})
	return nil
}

func main() {
	preset := core.CIFARRelease()
	var models modelFlags
	var pulls pullFlags
	var policies policyFlags
	flag.Var(&models, "model", "model to serve as name=path (repeatable)")
	flag.Var(&pulls, "pull", "model to pull from -store as name=digest (repeatable)")
	flag.Var(&policies, "policy", `serving defense policy as name={"mode":"top1","round":2,"query_budget":500} (repeatable; also settable at runtime via POST /v1/models/{name}:policy)`)
	modelsDir := flag.String("models", "", "directory of released models; files are sniffed by header, served under file name minus extension")
	storeDir := flag.String("store", "", "artifact store of published releases; enables -pull and the :load endpoint (digest-based distribution)")
	native := flag.Bool("native", false, "serve quantized releases codebook-native (LUT kernels over released indices; bit-identical, lower resident memory)")
	listen := flag.String("listen", ":8080", "HTTP listen address")
	maxBatch := flag.Int("max-batch", 16, "max requests coalesced into one forward pass")
	queue := flag.Int("queue", 256, "per-model request queue depth (backpressure bound)")
	flush := flag.Duration("flush", 2*time.Millisecond, "batching flush window")
	threads := flag.Int("threads", 0, "worker threads per model engine (0 = all cores)")
	bounds := flag.String("bounds", preset.BoundsCSV(), "default conv-index group bounds for the audit endpoint")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (opt-in)")
	obsOn := flag.Bool("obs", false, "enable deep runtime instrumentation (compute pool timings) in /metricsz")
	accessLog := flag.String("access-log", "", `structured JSON access log destination: "-" for stdout, else a file to append to`)
	drainGrace := flag.Duration("drain-grace", 3*time.Second, "how long /readyz advertises draining before the listener stops (lets gateways eject this replica first)")
	flag.Parse()
	if len(models) == 0 && *modelsDir == "" && len(pulls) == 0 && *storeDir == "" {
		fatal(errors.New("at least one -model name=path, a -models dir, a -store (models pushed later via :load), or a -pull name=digest is required"))
	}
	if len(pulls) > 0 && *storeDir == "" {
		fatal(errors.New("-pull requires -store"))
	}

	var store *artifact.Store
	if *storeDir != "" {
		var err error
		if store, err = artifact.Open(*storeDir); err != nil {
			fatal(err)
		}
	}
	gb, err := parseInts(*bounds)
	if err != nil {
		fatal(fmt.Errorf("bad -bounds: %w", err))
	}
	reg := serve.NewRegistry(serve.Options{
		MaxBatch:    *maxBatch,
		QueueDepth:  *queue,
		FlushEvery:  *flush,
		Threads:     *threads,
		NativeQuant: *native,
		Store:       store,
	})
	// Start the listener before any model loads: /healthz and /readyz
	// answer immediately (readyz says "starting"), so a fronting gateway
	// can watch this replica come up instead of timing out on it.
	obs.Enable(*obsOn)
	api := serve.NewServer(reg, gb)
	if w, err := openAccessLog(*accessLog); err != nil {
		fatal(err)
	} else if w != nil {
		api.SetAccessLog(w)
	}
	mux := http.NewServeMux()
	mux.Handle("/", api.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("pprof enabled at %s/debug/pprof/\n", *listen)
	}
	srv := &http.Server{Addr: *listen, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	loaded := 0
	announce := func(en *serve.Entry) {
		kind := "full-precision"
		switch {
		case en.Native:
			kind = "quantized (codebook-native)"
		case en.Quantized:
			kind = "quantized"
		}
		fmt.Printf("loaded %q: %s, %d params, %d bytes on disk, %d bytes resident (sha256 %s)\n",
			en.Name, kind, en.Params, en.Size.TotalBytes(), en.ResidentBytes(), en.Digest[:12])
		loaded++
	}
	if *modelsDir != "" {
		entries, skipped, err := reg.LoadDir(*modelsDir, serve.ModeAuto)
		if err != nil {
			fatal(err)
		}
		for _, en := range entries {
			announce(en)
		}
		for _, sk := range skipped {
			fmt.Printf("skipped %s: %s\n", sk.Path, sk.Reason)
		}
	}
	for _, m := range models {
		en, err := reg.LoadFile(m.name, m.path)
		if err != nil {
			fatal(err)
		}
		announce(en)
	}
	for _, p := range pulls {
		en, err := reg.LoadDigest(p.name, p.digest, serve.ModeAuto)
		if err != nil {
			fatal(err)
		}
		announce(en)
	}
	for _, pf := range policies {
		var pol serve.Policy
		if err := json.Unmarshal([]byte(pf.spec), &pol); err != nil {
			fatal(fmt.Errorf("bad -policy %s: %w", pf.name, err))
		}
		if err := reg.SetPolicy(pf.name, pol); err != nil {
			fatal(fmt.Errorf("bad -policy %s: %w", pf.name, err))
		}
		fmt.Printf("policy %q: mode=%s round=%d query_budget=%d\n", pf.name, pol.Mode, pol.Round, pol.QueryBudget)
	}
	api.SetReady()
	fmt.Printf("serving %d model(s) on %s (ready)\n", loaded, *listen)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("received %s, draining\n", sig)
	}

	// Advertise the drain on /readyz first and linger, so gateway probes
	// eject this replica from routing while it still answers everything —
	// the zero-lost-requests half of a rolling restart.
	api.StartDrain()
	time.Sleep(*drainGrace)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "dacserve: shutdown:", err)
	}
	reg.Close() // answer anything already queued, then stop the engines
	fmt.Println("bye")
}

// openAccessLog resolves the -access-log flag: "" disables, "-" is stdout,
// anything else appends to the named file.
func openAccessLog(dest string) (io.Writer, error) {
	switch dest {
	case "":
		return nil, nil
	case "-":
		return os.Stdout, nil
	default:
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("open -access-log: %w", err)
		}
		return f, nil
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dacserve:", err)
	os.Exit(1)
}
