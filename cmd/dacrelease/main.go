// Command dacrelease plays the data holder's side of the threat model: it
// trains a classifier on (synthetic) private data using the third-party
// pipeline — which happens to be malicious — quantizes it, and writes the
// released model file an adversary would later obtain.
//
//	dacrelease -model released.bin [-truth dir] [-lambda 10] [-bits 4]
//
// With -truth, the ground-truth encoding targets are also saved as PGM
// files so the extraction can be scored afterwards (evaluation aid only;
// the adversary never sees them). With -quantized-out, the bare
// quantization record (codebooks plus per-weight indices, DACQAP1) is also
// written next to the release — the standalone artifact quantization
// tooling consumes; it is not servable on its own (dacserve skips it) since
// it carries no architecture or batch-norm state. With -store, the release
// is additionally published into an artifact store under its content
// digest, where a dacserve/dacgateway fleet pulls it from — every replica
// that loads the digest provably serves byte-identical weights.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"io"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/modelio"
	"repro/internal/obs"
	"repro/internal/quantize"
	"repro/internal/serve"
)

func main() {
	modelPath := flag.String("model", "released.bin", "output model file")
	storeDir := flag.String("store", "", "artifact store to also publish the release into, keyed by content digest (dacserve replicas pull it with -pull / :load)")
	quantOut := flag.String("quantized-out", "", "optional path for the bare quantization record (DACQAP1: codebooks + indices, no architecture)")
	truthDir := flag.String("truth", "", "optional directory for ground-truth target PGMs")
	lambda := flag.Float64("lambda", 10, "correlation rate for the encoding group")
	bits := flag.Int("bits", 4, "quantization bit width")
	epochs := flag.Int("epochs", 15, "training epochs")
	n := flag.Int("n", 800, "dataset size")
	seed := flag.Int64("seed", 7, "seed")
	threads := flag.Int("threads", 0, "worker threads per model pass (0 = all cores; results identical for any value)")
	traceOut := flag.String("trace-out", "", "write a phase-span timing report to this file at exit (\"-\" for stderr)")
	cacheDir := flag.String("cache-dir", "", "persistent artifact store; stages with cached results are skipped across invocations")
	resume := flag.Bool("resume", false, "with -cache-dir: continue an interrupted training run from its latest epoch checkpoint")
	var dcli dist.CLI
	dcli.Register(flag.CommandLine)
	flag.Parse()

	sess, fleet, err := dcli.Resolve(os.Args[1:])
	if err != nil {
		fatal(err)
	}
	worker := sess != nil && sess.Worker()
	if worker {
		// Workers feed gradient shards into the coordinator's training run
		// and never write release outputs or reports.
		*traceOut = ""
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		obs.Enable(true)
		tracer = obs.NewTracer()
		defer writeTrace(*traceOut, tracer)
	}

	var store *artifact.Store
	if *cacheDir != "" {
		var err error
		if store, err = artifact.Open(*cacheDir); err != nil {
			fatal(err)
		}
	} else if *resume {
		fmt.Fprintln(os.Stderr, "dacrelease: -resume requires -cache-dir")
		os.Exit(2)
	}

	preset := core.CIFARRelease()
	data := dataset.SyntheticCIFAR(preset.DataConfig(*n, *seed))
	arch := preset.ArchConfig(1)
	logw := io.Writer(os.Stderr)
	if worker {
		logw = nil
	}
	res := core.Run(core.Config{
		Data: data, ModelCfg: arch,
		GroupBounds: preset.GroupBounds,
		Lambdas:     preset.Lambdas(*lambda),
		WindowLen:   preset.WindowLen,
		Epochs:      *epochs, BatchSize: 32, LR: 0.05, Momentum: 0.9, ClipNorm: 5,
		Quant: core.QuantTargetCorrelated, Bits: *bits,
		FineTuneEpochs: 3, KeepRegDuringFineTune: true,
		Seed: *seed, Log: logw,
		Threads: *threads, Trace: tracer,
		Cache: store, Resume: *resume,
		Dist: sess, Shards: dcli.Shards,
	})
	if worker {
		// The coordinator owns the release; this rank's contribution ended
		// with the jointly trained model.
		return
	}

	rm, err := modelio.Export(res.Model, arch, res.Applied)
	if err != nil {
		fatal(err)
	}
	if err := modelio.Save(*modelPath, rm); err != nil {
		fatal(err)
	}
	size := modelio.Size(rm)
	fmt.Printf("released %s: test accuracy %.2f%%, %d images embedded\n",
		*modelPath, 100*res.TestAcc, res.Plan.TotalImages())
	fmt.Printf("storage: %d bytes (%.1fx smaller than raw %d bytes)\n",
		size.TotalBytes(), size.Ratio(), size.RawBytes)

	if *storeDir != "" {
		pub, err := artifact.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		digest, err := serve.PublishReleaseFile(pub, *modelPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("published release to %s (digest %s)\n", *storeDir, digest)
	}

	if *quantOut != "" {
		if res.Applied == nil {
			fatal(fmt.Errorf("-quantized-out: run produced no quantization record"))
		}
		if err := writeQuantRecord(*quantOut, res.Applied); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote quantization record to %s\n", *quantOut)
	}

	if *truthDir != "" {
		if err := os.MkdirAll(*truthDir, 0o755); err != nil {
			fatal(err)
		}
		for i, im := range res.Plan.AllImages() {
			path := filepath.Join(*truthDir, fmt.Sprintf("truth_%03d.pgm", i))
			if err := im.SavePNM(path); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d ground-truth targets to %s\n", res.Plan.TotalImages(), *truthDir)
	}

	if err := fleet.Wait(); err != nil {
		fatal(err)
	}
}

// writeQuantRecord encodes the run's quantization state as a standalone
// DACQAP1 file next to the release.
func writeQuantRecord(path string, a *quantize.Applied) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := quantize.EncodeApplied(f, quantize.Snapshot(a)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace renders the span-tree timing report to path ("-" = stderr).
func writeTrace(path string, tr *obs.Tracer) {
	if path == "-" {
		tr.WriteReport(os.Stderr)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dacrelease: trace-out: %v\n", err)
		return
	}
	defer f.Close()
	tr.WriteReport(f)
	fmt.Fprintf(os.Stderr, "wrote phase trace to %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dacrelease:", err)
	os.Exit(1)
}
